//! The compiled, immutable, query-optimized index.
//!
//! [`FrozenIndex`] fuses three training-time artifacts into one flat
//! structure sized for the read path:
//!
//! * the spatial structure — either a [`KdTree`] flattened into a
//!   breadth-first arena of 24-byte nodes traversed branchlessly, or an
//!   arbitrary [`Partition`] compiled into a per-cell leaf table;
//! * the grid geometry, so queries are *continuous* [`Point`]s rather
//!   than grid coordinates;
//! * a [`ModelSnapshot`] of per-leaf raw scores and calibration offsets,
//!   with calibrated scores precomputed at compile time.
//!
//! A lookup is two subtractions, two divisions and (for the tree backend)
//! one comparison per tree level; the per-level child select is a
//! branch-free index into a two-element array, so the only unpredictable
//! branch in the whole traversal is the loop exit. Cell-to-leaf parity
//! with [`Grid::locate`] + [`KdTree::locate`] is exact, not approximate:
//! the fractional cell coordinates are computed with the same operations
//! `Grid::locate` uses, and comparing them against integer cut boundaries
//! is equivalent to comparing the floored cell indices.

use crate::error::ServeError;
use fsi_core::KdTree;
use fsi_geo::{Axis, CellRect, Grid, Partition, Point, Rect};
use fsi_pipeline::ModelSnapshot;

/// Child/root reference: high bit set ⇒ leaf (low bits = leaf id),
/// otherwise an index into the flat internal-node arena.
const LEAF_BIT: u32 = 1 << 31;

/// One flattened internal node (24 bytes).
#[derive(Debug, Clone, Copy)]
struct FlatNode {
    /// Cut boundary in fractional cell units along `axis`.
    split: f64,
    /// Coordinate compared: `0` ⇒ fractional column (x), `1` ⇒ fractional
    /// row (y).
    axis: u32,
    /// `[low, high]` child references (`LEAF_BIT` encoding).
    children: [u32; 2],
}

/// Flattened KD-tree: internal nodes in breadth-first order, so the top
/// of the tree — visited by every lookup — occupies one cache line run.
#[derive(Debug, Clone)]
struct FlatTree {
    nodes: Vec<FlatNode>,
    root: u32,
}

/// The spatial backend of a frozen index.
#[derive(Debug, Clone)]
enum Backend {
    /// Branchless flattened KD-tree (compiled from a [`KdTree`]).
    Tree(FlatTree),
    /// Per-cell leaf table (compiled from an arbitrary [`Partition`]).
    Cells(Vec<u32>),
}

/// Restriction of a partial index to a sub-block of the global grid.
///
/// A clipped index keeps the *global* [`Grid`], so fractional cell
/// coordinates — and therefore leaf assignment — stay bit-identical to
/// the unclipped index; only the acceptance test and the leaf-id
/// namespace shrink. Leaf storage is compacted to the leaves whose
/// region intersects the block, with `leaf_ids` mapping each local slot
/// back to its global id, so every [`Decision`] a partial index hands
/// out is indistinguishable from the single-box answer.
#[derive(Debug, Clone)]
struct Clip {
    /// The block of global grid cells this partial index owns.
    cells: CellRect,
    /// Continuous extent of the block (what [`FrozenIndex::bounds`]
    /// reports for a clipped index).
    rect: Rect,
    /// Local leaf slot → global leaf id, ascending.
    leaf_ids: Vec<u32>,
}

/// The decision returned for one query point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Decision {
    /// Leaf (= region) id of the neighborhood containing the point.
    pub leaf_id: usize,
    /// Spatial fairness group the decision is calibrated against (equal
    /// to `leaf_id` under the identity group mapping).
    pub group: usize,
    /// The model's raw (uncalibrated) score for the neighborhood.
    pub raw_score: f64,
    /// The locally calibrated score: `raw + offset`, clamped to `[0, 1]`.
    pub calibrated_score: f64,
}

/// An immutable, compiled spatial decision index.
///
/// Build one with [`FrozenIndex::compile`] (from a KD-tree) or
/// [`FrozenIndex::from_partition`] (from any partition), then serve
/// [`FrozenIndex::lookup`] / [`FrozenIndex::lookup_batch`] /
/// [`FrozenIndex::range_query`] from as many threads as you like — every
/// method takes `&self` and the structure never mutates. Swapping in a
/// freshly built index without blocking readers is the job of
/// [`crate::IndexHandle`].
#[derive(Debug, Clone)]
pub struct FrozenIndex {
    backend: Backend,
    /// The grid geometry — the single authority on point → cell
    /// semantics (cold paths delegate to [`Grid::cell_of`]).
    grid: Grid,
    /// Cached `grid.cell_width()` / `grid.cell_height()`, so the hot
    /// path pays no divisions beyond the two in `fractional`.
    cell_w: f64,
    cell_h: f64,
    /// Exact reciprocals of `cell_w` / `cell_h` when both are binary
    /// powers of two (the common normalized-bounds case): multiplying by
    /// an exact power-of-two reciprocal only shifts the exponent, so it
    /// is bit-identical to the division and roughly twice as fast on the
    /// lookup hot path. `None` whenever exactness cannot be proven.
    inv_wh: Option<(f64, f64)>,
    /// Per-leaf raw scores (from the snapshot).
    raw: Vec<f64>,
    /// Per-leaf calibration offsets (kept for introspection).
    offset: Vec<f64>,
    /// Per-leaf calibrated scores, precomputed at compile time.
    calibrated: Vec<f64>,
    /// Per-leaf fairness-group ids.
    group: Vec<u32>,
    /// `Some` when this is a partial index restricted to a sub-block of
    /// the grid (see [`FrozenIndex::compile_clipped`]).
    clip: Option<Clip>,
}

impl FrozenIndex {
    /// Compiles a KD-tree, its grid geometry and a model snapshot into a
    /// frozen index with the branchless flattened-tree backend.
    pub fn compile(
        tree: &KdTree,
        grid: &Grid,
        snapshot: &ModelSnapshot,
    ) -> Result<Self, ServeError> {
        if tree.grid_shape() != (grid.rows(), grid.cols()) {
            return Err(ServeError::GridMismatch {
                expected: tree.grid_shape(),
                got: (grid.rows(), grid.cols()),
            });
        }
        let flat = flatten(tree);
        Self::with_backend(Backend::Tree(flat), grid, tree.num_leaves(), snapshot)
    }

    /// Compiles an arbitrary partition (KD-leaf, Voronoi, uniform, …)
    /// into a frozen index with the per-cell leaf-table backend.
    pub fn from_partition(
        partition: &Partition,
        grid: &Grid,
        snapshot: &ModelSnapshot,
    ) -> Result<Self, ServeError> {
        if partition.grid_shape() != (grid.rows(), grid.cols()) {
            return Err(ServeError::GridMismatch {
                expected: partition.grid_shape(),
                got: (grid.rows(), grid.cols()),
            });
        }
        let cells = partition.assignments().to_vec();
        Self::with_backend(
            Backend::Cells(cells),
            grid,
            partition.num_regions(),
            snapshot,
        )
    }

    fn with_backend(
        backend: Backend,
        grid: &Grid,
        num_leaves: usize,
        snapshot: &ModelSnapshot,
    ) -> Result<Self, ServeError> {
        if num_leaves >= LEAF_BIT as usize {
            return Err(ServeError::TooManyLeaves {
                leaves: num_leaves,
                max: LEAF_BIT as usize - 1,
            });
        }
        if snapshot.num_leaves() != num_leaves {
            return Err(ServeError::SnapshotMismatch {
                leaves: num_leaves,
                snapshot: snapshot.num_leaves(),
            });
        }
        let calibrated = (0..num_leaves).map(|l| snapshot.calibrated(l)).collect();
        let (cell_w, cell_h) = (grid.cell_width(), grid.cell_height());
        // A normal positive power of two has an all-zero mantissa; for
        // such values the reciprocal is also an exact power of two, and
        // multiplying by it is bit-identical to dividing.
        let exact_recip = |x: f64| {
            let normal_pow2 =
                |v: f64| v.is_normal() && v > 0.0 && v.to_bits() & ((1u64 << 52) - 1) == 0;
            let inv = 1.0 / x;
            (normal_pow2(x) && normal_pow2(inv)).then_some(inv)
        };
        let inv_wh = exact_recip(cell_w).zip(exact_recip(cell_h));
        Ok(Self {
            backend,
            grid: grid.clone(),
            cell_w,
            cell_h,
            inv_wh,
            raw: snapshot.raw_scores().to_vec(),
            offset: snapshot.offsets().to_vec(),
            calibrated,
            group: snapshot.groups().to_vec(),
            clip: None,
        })
    }

    /// Compiles a **partial index** restricted to the grid cells a clip
    /// rectangle touches (closed-bounds, same cell semantics as
    /// [`FrozenIndex::range_query`]).
    ///
    /// The partial index keeps the global grid geometry, so every answer
    /// it gives — leaf ids, groups, scores, cache cell indices — is
    /// bit-identical to the full index; points whose cell falls outside
    /// the block are simply rejected (`lookup` returns `None`, batches
    /// report [`ServeError::PointOutOfBounds`]). What shrinks is the
    /// working set: the tree/cell backend is pruned to the block and
    /// leaf storage is compacted to the leaves intersecting it, so
    /// per-shard [`FrozenIndex::heap_bytes`] scales *down* with shard
    /// count instead of replicating.
    ///
    /// Clipping an already clipped index is rejected.
    pub fn compile_clipped(&self, rect: &Rect) -> Result<FrozenIndex, ServeError> {
        if self.clip.is_some() {
            return Err(ServeError::InvalidTopology(
                "cannot clip an already clipped index".into(),
            ));
        }
        let cells = self.covered_cells(rect).ok_or_else(|| {
            ServeError::InvalidTopology(format!(
                "clip rectangle ({}, {})..({}, {}) misses the map",
                rect.min_x, rect.min_y, rect.max_x, rect.max_y
            ))
        })?;
        // Which global leaves own at least one block cell? Local slots
        // follow ascending global id, so remapped query results sort
        // identically to the unclipped index.
        let mut present = vec![false; self.num_leaves()];
        for row in cells.row_start..cells.row_end {
            for col in cells.col_start..cells.col_end {
                let g = match &self.backend {
                    Backend::Tree(_) => self.leaf_of(col as f64, row as f64),
                    Backend::Cells(map) => map[row * self.grid.cols() + col],
                };
                present[g as usize] = true;
            }
        }
        let leaf_ids: Vec<u32> = (0..self.num_leaves() as u32)
            .filter(|&g| present[g as usize])
            .collect();
        let mut slot_of = vec![u32::MAX; self.num_leaves()];
        for (slot, &g) in leaf_ids.iter().enumerate() {
            slot_of[g as usize] = slot as u32;
        }
        let backend = match &self.backend {
            Backend::Tree(ft) => Backend::Tree(clip_tree(ft, &cells, &slot_of)),
            Backend::Cells(map) => {
                let block_cols = cells.col_end - cells.col_start;
                let mut local = Vec::with_capacity((cells.row_end - cells.row_start) * block_cols);
                for row in cells.row_start..cells.row_end {
                    for col in cells.col_start..cells.col_end {
                        local.push(slot_of[map[row * self.grid.cols() + col] as usize]);
                    }
                }
                Backend::Cells(local)
            }
        };
        let b = self.grid.bounds();
        let rect = Rect::new(
            b.min_x + cells.col_start as f64 * self.cell_w,
            b.min_y + cells.row_start as f64 * self.cell_h,
            (b.min_x + cells.col_end as f64 * self.cell_w).min(b.max_x),
            (b.min_y + cells.row_end as f64 * self.cell_h).min(b.max_y),
        )
        .map_err(|e| ServeError::InvalidTopology(format!("degenerate clip block: {e}")))?;
        let pick = |xs: &[f64]| leaf_ids.iter().map(|&g| xs[g as usize]).collect();
        Ok(FrozenIndex {
            backend,
            grid: self.grid.clone(),
            cell_w: self.cell_w,
            cell_h: self.cell_h,
            inv_wh: self.inv_wh,
            raw: pick(&self.raw),
            offset: pick(&self.offset),
            calibrated: pick(&self.calibrated),
            group: leaf_ids.iter().map(|&g| self.group[g as usize]).collect(),
            clip: Some(Clip {
                cells,
                rect,
                leaf_ids,
            }),
        })
    }

    /// Fractional cell coordinates of a point, or `None` when the point
    /// is non-finite or outside the closed map bounds. Uses the exact
    /// arithmetic of [`Grid::locate`] so cell assignment is bit-identical
    /// (the reciprocal-multiply branch fires only when proven exact; see
    /// `inv_wh`).
    #[inline]
    fn fractional(&self, p: &Point) -> Option<(f64, f64)> {
        let b = self.grid.bounds();
        if !p.is_finite() || !b.contains(p) {
            return None;
        }
        let (dx, dy) = (p.x - b.min_x, p.y - b.min_y);
        Some(match self.inv_wh {
            Some((inv_w, inv_h)) => (dx * inv_w, dy * inv_h),
            None => (dx / self.cell_w, dy / self.cell_h),
        })
    }

    /// Leaf id of a point given its fractional cell coordinates.
    ///
    /// Tree backend: comparing the fractional coordinate against an
    /// integer boundary `b` is equivalent to comparing the floored cell
    /// index (`fy ≥ b ⇔ ⌊fy⌋ ≥ b` for integral `b`), and the max-edge
    /// clamp of `Grid::locate` only affects `fy = rows`, which every cut
    /// (`b ≤ rows − 1`) already sends high — so the traversal agrees with
    /// `Grid::locate` + `KdTree::locate` exactly.
    #[inline]
    fn leaf_of(&self, fx: f64, fy: f64) -> u32 {
        match &self.backend {
            Backend::Tree(ft) => {
                let coords = [fx, fy];
                let mut cur = ft.root;
                while cur & LEAF_BIT == 0 {
                    let n = &ft.nodes[cur as usize];
                    let hi = usize::from(coords[n.axis as usize] >= n.split);
                    cur = n.children[hi];
                }
                cur & !LEAF_BIT
            }
            Backend::Cells(map) => {
                // Same floor-and-clamp as `Grid::cell_of`, on the
                // already-computed fractional coordinates.
                let col = (fx as usize).min(self.grid.cols() - 1);
                let row = (fy as usize).min(self.grid.rows() - 1);
                self.cell_slot(map, row, col)
            }
        }
    }

    /// Whether this index serves the grid cell the fractional
    /// coordinates floor into. Always true for a full index; a partial
    /// index accepts exactly the cells of its block, so a point on an
    /// interior block edge is rejected here and served by the neighbor
    /// owning the next cell — the same closed-boundary semantics as
    /// `Grid::cell_of` on a single box.
    #[inline]
    fn accepts(&self, fx: f64, fy: f64) -> bool {
        match &self.clip {
            None => true,
            Some(c) => {
                let col = (fx as usize).min(self.grid.cols() - 1);
                let row = (fy as usize).min(self.grid.rows() - 1);
                row >= c.cells.row_start
                    && row < c.cells.row_end
                    && col >= c.cells.col_start
                    && col < c.cells.col_end
            }
        }
    }

    #[inline]
    fn decision(&self, leaf: u32) -> Decision {
        let l = leaf as usize;
        Decision {
            leaf_id: match &self.clip {
                None => l,
                Some(c) => c.leaf_ids[l] as usize,
            },
            group: self.group[l] as usize,
            raw_score: self.raw[l],
            calibrated_score: self.calibrated[l],
        }
    }

    /// Maps a point to its fair-neighborhood decision. Returns `None`
    /// when the point is non-finite, outside the map bounds, or (for a
    /// partial index) outside the clipped block.
    #[inline]
    pub fn lookup(&self, p: &Point) -> Option<Decision> {
        let (fx, fy) = self.fractional(p)?;
        if !self.accepts(fx, fy) {
            return None;
        }
        Some(self.decision(self.leaf_of(fx, fy)))
    }

    /// Row-major grid cell index of a point — the spatial half of a
    /// decision-cache key. `None` under exactly the conditions
    /// [`FrozenIndex::lookup`] returns `None`, and the floor-and-clamp
    /// is the same as `Grid::cell_of`, so
    /// `lookup_cell(cell_index(p)?) == lookup(p)` for every point: one
    /// cached decision per cell can never disagree with the uncached
    /// answer, boundary points included.
    ///
    /// Cell indices stay **global** on a partial index (a clipped shard
    /// rejects out-of-block points instead of renumbering cells), so a
    /// decision cache keyed by them is consistent across every topology.
    #[inline]
    pub fn cell_index(&self, p: &Point) -> Option<u64> {
        let (fx, fy) = self.fractional(p)?;
        if !self.accepts(fx, fy) {
            return None;
        }
        let col = (fx as usize).min(self.grid.cols() - 1);
        let row = (fy as usize).min(self.grid.rows() - 1);
        Some((row * self.grid.cols() + col) as u64)
    }

    /// The decision every point of a (row-major) grid cell maps to, or
    /// `None` for a cell index outside the grid. For the tree backend
    /// this re-enters the traversal at the cell's integer coordinates,
    /// which agrees with any fractional point in the cell because every
    /// cut boundary is integral (`fx ≥ b ⇔ ⌊fx⌋ ≥ b`).
    #[inline]
    pub fn lookup_cell(&self, cell: u64) -> Option<Decision> {
        let cols = self.grid.cols();
        let cell = cell as usize;
        if cell >= self.grid.rows() * cols {
            return None;
        }
        let (row, col) = (cell / cols, cell % cols);
        if let Some(c) = &self.clip {
            // Cell ids are global; a partial index only answers for the
            // cells of its block.
            if row < c.cells.row_start
                || row >= c.cells.row_end
                || col < c.cells.col_start
                || col >= c.cells.col_end
            {
                return None;
            }
        }
        let leaf = match &self.backend {
            Backend::Tree(_) => self.leaf_of(col as f64, row as f64),
            Backend::Cells(map) => self.cell_slot(map, row, col),
        };
        Some(self.decision(leaf))
    }

    /// Batch lookup: slice in, decisions out. Clears and refills `out`,
    /// so reusing the buffer across calls amortizes allocation over the
    /// whole request stream. Fails on the first out-of-bounds point,
    /// reporting its batch index; `out` is left empty on error so a
    /// failed batch can never leak partial decisions to the caller.
    pub fn lookup_batch(
        &self,
        points: &[Point],
        out: &mut Vec<Decision>,
    ) -> Result<(), ServeError> {
        out.clear();
        out.reserve(points.len());
        for (index, p) in points.iter().enumerate() {
            let fract = self.fractional(p).filter(|&(fx, fy)| self.accepts(fx, fy));
            let Some((fx, fy)) = fract else {
                out.clear();
                return Err(ServeError::PointOutOfBounds {
                    index,
                    point: (p.x, p.y),
                });
            };
            out.push(self.decision(self.leaf_of(fx, fy)));
        }
        Ok(())
    }

    /// Leaf ids of every neighborhood a point of the closed query
    /// rectangle could map to, ascending. Agrees with
    /// [`KdTree::range_query`] over the covered cell block; a query
    /// entirely outside the map returns an empty vector.
    pub fn range_query(&self, query: &Rect) -> Vec<usize> {
        let Some(mut cells) = self.covered_cells(query) else {
            return Vec::new();
        };
        if let Some(c) = &self.clip {
            // A partial index answers for the intersection of the query
            // block with its own block; the coordinator unions the
            // per-shard results back into the single-box answer.
            cells = CellRect::new(
                cells.row_start.max(c.cells.row_start),
                cells.row_end.min(c.cells.row_end),
                cells.col_start.max(c.cells.col_start),
                cells.col_end.min(c.cells.col_end),
            );
            if cells.row_start >= cells.row_end || cells.col_start >= cells.col_end {
                return Vec::new();
            }
        }
        let local = match &self.backend {
            Backend::Tree(ft) => {
                let mut out = Vec::new();
                let mut stack = vec![ft.root];
                while let Some(r) = stack.pop() {
                    if r & LEAF_BIT != 0 {
                        out.push((r & !LEAF_BIT) as usize);
                        continue;
                    }
                    let n = &ft.nodes[r as usize];
                    let (lo, hi) = if n.axis == 0 {
                        (cells.col_start, cells.col_end)
                    } else {
                        (cells.row_start, cells.row_end)
                    };
                    let s = n.split as usize;
                    if lo < s {
                        stack.push(n.children[0]);
                    }
                    if hi > s {
                        stack.push(n.children[1]);
                    }
                }
                out.sort_unstable();
                out
            }
            Backend::Cells(map) => {
                let mut seen = vec![false; self.num_leaves()];
                for row in cells.row_start..cells.row_end {
                    for col in cells.col_start..cells.col_end {
                        seen[self.cell_slot(map, row, col) as usize] = true;
                    }
                }
                (0..self.num_leaves())
                    .filter(|&l| seen[l])
                    .collect::<Vec<_>>()
            }
        };
        match &self.clip {
            // Local slots ascend with global leaf ids, so the remapped
            // list is already sorted.
            None => local,
            Some(c) => local
                .into_iter()
                .map(|slot| c.leaf_ids[slot] as usize)
                .collect(),
        }
    }

    /// Leaf slot stored for a global `(row, col)` cell in a cell-table
    /// backend, translating into the block-local table when clipped.
    #[inline]
    fn cell_slot(&self, map: &[u32], row: usize, col: usize) -> u32 {
        match &self.clip {
            None => map[row * self.grid.cols() + col],
            Some(c) => {
                let block_cols = c.cells.col_end - c.cells.col_start;
                map[(row - c.cells.row_start) * block_cols + (col - c.cells.col_start)]
            }
        }
    }

    /// The block of cells the closed `query` rectangle touches under
    /// point-lookup semantics (a cell is included iff some point of the
    /// query maps to it), or `None` when the query misses the map.
    fn covered_cells(&self, query: &Rect) -> Option<CellRect> {
        // `Rect::new` validates finiteness, but the fields are public, so
        // reject NaN/infinite queries before min/max (which ignore NaN).
        let finite = [query.min_x, query.min_y, query.max_x, query.max_y]
            .iter()
            .all(|v| v.is_finite());
        if !finite {
            return None;
        }
        let b = self.grid.bounds();
        let lo_x = query.min_x.max(b.min_x);
        let hi_x = query.max_x.min(b.max_x);
        let lo_y = query.min_y.max(b.min_y);
        let hi_y = query.max_y.min(b.max_y);
        if lo_x > hi_x || lo_y > hi_y {
            return None;
        }
        // Cold path: delegate the corner → cell mapping to the single
        // authority on boundary semantics. Both corners are clamped into
        // the bounds above, so `cell_of` cannot miss.
        let (row_lo, col_lo) = self.grid.cell_of(&Point::new(lo_x, lo_y))?;
        let (row_hi, col_hi) = self.grid.cell_of(&Point::new(hi_x, hi_y))?;
        Some(CellRect::new(row_lo, row_hi + 1, col_lo, col_hi + 1))
    }

    /// Number of leaves (neighborhoods) served.
    #[inline]
    pub fn num_leaves(&self) -> usize {
        self.raw.len()
    }

    /// Grid shape `(rows, cols)` the index was compiled over.
    #[inline]
    pub fn grid_shape(&self) -> (usize, usize) {
        (self.grid.rows(), self.grid.cols())
    }

    /// Map bounds accepted by lookups — the clipped block's extent for
    /// a partial index, the whole map otherwise.
    #[inline]
    pub fn bounds(&self) -> &Rect {
        match &self.clip {
            None => self.grid.bounds(),
            Some(c) => &c.rect,
        }
    }

    /// The sub-rectangle this index is clipped to, or `None` for a full
    /// index.
    #[inline]
    pub fn clip_rect(&self) -> Option<&Rect> {
        self.clip.as_ref().map(|c| &c.rect)
    }

    /// `"tree"` or `"cells"`: which compiled backend answers lookups.
    pub fn backend_name(&self) -> &'static str {
        match &self.backend {
            Backend::Tree(_) => "tree",
            Backend::Cells(_) => "cells",
        }
    }

    /// Per-leaf calibration offsets (introspection / diagnostics).
    #[inline]
    pub fn offsets(&self) -> &[f64] {
        &self.offset
    }

    /// Approximate heap footprint in bytes — the whole read working set.
    pub fn heap_bytes(&self) -> usize {
        let backend = match &self.backend {
            Backend::Tree(ft) => ft.nodes.len() * std::mem::size_of::<FlatNode>(),
            Backend::Cells(map) => map.len() * std::mem::size_of::<u32>(),
        };
        backend
            + (self.raw.len() + self.offset.len() + self.calibrated.len())
                * std::mem::size_of::<f64>()
            + self.group.len() * std::mem::size_of::<u32>()
            + self
                .clip
                .as_ref()
                .map_or(0, |c| c.leaf_ids.len() * std::mem::size_of::<u32>())
    }
}

/// Prunes a flat tree to the sub-block `cells`, remapping leaves to
/// local slots via `slot_of`.
///
/// Chains of internal nodes whose cut falls outside the block's
/// row/column range resolve to their only reachable child (contracting
/// the chain), so traversal depth also shrinks with the block. Ranges
/// are half-open and non-empty throughout: for a node with cut `s` and
/// range `lo..hi`, `lo ≥ s` implies `hi > s`, so at least one child is
/// always reachable.
fn clip_tree(ft: &FlatTree, cells: &CellRect, slot_of: &[u32]) -> FlatTree {
    // Resolve a child reference under the row/col ranges it can receive:
    // skip internal nodes the block never crosses, narrowing the range.
    fn resolve(
        nodes: &[FlatNode],
        mut r: u32,
        mut rows: (usize, usize),
        mut cols: (usize, usize),
    ) -> (u32, (usize, usize), (usize, usize)) {
        while r & LEAF_BIT == 0 {
            let n = &nodes[r as usize];
            let s = n.split as usize;
            let (lo, hi) = if n.axis == 0 { cols } else { rows };
            let (low, high) = (lo < s, hi > s);
            if low && high {
                break;
            }
            let (child, narrowed) = if low {
                (n.children[0], (lo, hi.min(s)))
            } else {
                (n.children[1], (lo.max(s), hi))
            };
            if n.axis == 0 {
                cols = narrowed;
            } else {
                rows = narrowed;
            }
            r = child;
        }
        (r, rows, cols)
    }

    let remap_leaf = |r: u32| LEAF_BIT | slot_of[(r & !LEAF_BIT) as usize];
    let rows0 = (cells.row_start, cells.row_end);
    let cols0 = (cells.col_start, cells.col_end);
    let (root, root_rows, root_cols) = resolve(&ft.nodes, ft.root, rows0, cols0);
    if root & LEAF_BIT != 0 {
        return FlatTree {
            nodes: Vec::new(),
            root: remap_leaf(root),
        };
    }

    // Pass 1: breadth-first order over kept internal nodes, tracking the
    // (narrowed) range each one is reached with.
    // A kept node plus the (row, col) index ranges it is reached with.
    type RangedNode = (u32, (usize, usize), (usize, usize));
    let mut new_of = vec![u32::MAX; ft.nodes.len()];
    let mut order: Vec<RangedNode> = Vec::new();
    let mut queue = std::collections::VecDeque::from([(root, root_rows, root_cols)]);
    while let Some((i, rows, cols)) = queue.pop_front() {
        new_of[i as usize] = order.len() as u32;
        order.push((i, rows, cols));
        let n = &ft.nodes[i as usize];
        let s = n.split as usize;
        let (lo, hi) = if n.axis == 0 { cols } else { rows };
        for (child, sub) in [(n.children[0], (lo, s)), (n.children[1], (s, hi))] {
            let (crows, ccols) = if n.axis == 0 {
                (rows, sub)
            } else {
                (sub, cols)
            };
            let (c, crows, ccols) = resolve(&ft.nodes, child, crows, ccols);
            if c & LEAF_BIT == 0 {
                queue.push_back((c, crows, ccols));
            }
        }
    }

    // Pass 2: emit nodes with resolved, remapped child references.
    let mut nodes = Vec::with_capacity(order.len());
    for &(i, rows, cols) in &order {
        let n = &ft.nodes[i as usize];
        let s = n.split as usize;
        let (lo, hi) = if n.axis == 0 { cols } else { rows };
        let mut children = [0u32; 2];
        for (k, sub) in [(0usize, (lo, s)), (1, (s, hi))] {
            let (crows, ccols) = if n.axis == 0 {
                (rows, sub)
            } else {
                (sub, cols)
            };
            let (c, _, _) = resolve(&ft.nodes, n.children[k], crows, ccols);
            children[k] = if c & LEAF_BIT != 0 {
                remap_leaf(c)
            } else {
                new_of[c as usize]
            };
        }
        nodes.push(FlatNode {
            split: n.split,
            axis: n.axis,
            children,
        });
    }
    FlatTree { nodes, root: 0 }
}

/// Flattens a [`KdTree`] arena into breadth-first [`FlatNode`]s.
///
/// Leaf ids are OR-ed with [`LEAF_BIT`], so callers must enforce the
/// leaf-count cap; `with_backend` does, and discards this result when it
/// fails, so an oversized tree never reaches a served index.
fn flatten(tree: &KdTree) -> FlatTree {
    let arena = tree.nodes();
    let leaf_or = |idx: u32, flat_of: &[u32]| -> u32 {
        match arena[idx as usize].split_boundary() {
            None => match arena[idx as usize].kind {
                fsi_core::tree::NodeKind::Leaf { region_id } => LEAF_BIT | region_id as u32,
                _ => unreachable!("split_boundary is None only for leaves"),
            },
            Some(_) => flat_of[idx as usize],
        }
    };

    // Pass 1: breadth-first order over internal nodes.
    let mut flat_of = vec![u32::MAX; arena.len()];
    let mut order = Vec::new();
    let root = KdTree::ROOT;
    if arena.is_empty() || arena[root as usize].split_boundary().is_none() {
        // Single-leaf tree (or the degenerate empty arena): the root
        // reference itself is a leaf.
        return FlatTree {
            nodes: Vec::new(),
            root: LEAF_BIT,
        };
    }
    let mut queue = std::collections::VecDeque::from([root]);
    while let Some(i) = queue.pop_front() {
        flat_of[i as usize] = order.len() as u32;
        order.push(i);
        if let fsi_core::tree::NodeKind::Internal { low, high, .. } = arena[i as usize].kind {
            for c in [low, high] {
                if arena[c as usize].split_boundary().is_some() {
                    queue.push_back(c);
                }
            }
        }
    }

    // Pass 2: emit nodes with resolved child references.
    let mut nodes = Vec::with_capacity(order.len());
    for &i in &order {
        let node = &arena[i as usize];
        let (axis, boundary) = node
            .split_boundary()
            .expect("pass 1 only enqueues internal nodes");
        let axis_code = match axis {
            Axis::Col => 0, // vertical cut: compare the x (column) coordinate
            Axis::Row => 1, // horizontal cut: compare the y (row) coordinate
        };
        let fsi_core::tree::NodeKind::Internal { low, high, .. } = node.kind else {
            unreachable!("pass 1 only enqueues internal nodes");
        };
        nodes.push(FlatNode {
            split: boundary as f64,
            axis: axis_code,
            children: [leaf_or(low, &flat_of), leaf_or(high, &flat_of)],
        });
    }
    FlatTree { nodes, root: 0 }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fsi_core::{build_kd_tree, BuildConfig, CellStats};

    fn grid8() -> Grid {
        Grid::unit(8).unwrap()
    }

    /// A height-3 median tree over uniform counts: 8 equal leaves.
    fn median_tree(grid: &Grid) -> KdTree {
        let counts = vec![1.0; grid.len()];
        let zeros = vec![0.0; grid.len()];
        let stats = CellStats::new(grid, &counts, &zeros, &zeros).unwrap();
        build_kd_tree(
            &stats,
            &fsi_core::MedianSplit,
            &BuildConfig {
                height: 3,
                ..BuildConfig::default()
            },
        )
        .unwrap()
    }

    #[test]
    fn tree_backend_matches_locate_on_every_cell_centroid() {
        let grid = grid8();
        let tree = median_tree(&grid);
        let snapshot = ModelSnapshot::uniform(tree.num_leaves(), 0.5).unwrap();
        let idx = FrozenIndex::compile(&tree, &grid, &snapshot).unwrap();
        assert_eq!(idx.backend_name(), "tree");
        for cell in grid.cells() {
            let c = grid.centroid(cell).unwrap();
            let (row, col) = grid.cell_of(&c).unwrap();
            assert_eq!(
                idx.lookup(&c).unwrap().leaf_id,
                tree.locate(row, col).unwrap()
            );
        }
    }

    #[test]
    fn cells_backend_matches_partition() {
        let grid = grid8();
        let partition = Partition::uniform(&grid, 2, 4).unwrap();
        let snapshot = ModelSnapshot::uniform(partition.num_regions(), 0.5).unwrap();
        let idx = FrozenIndex::from_partition(&partition, &grid, &snapshot).unwrap();
        assert_eq!(idx.backend_name(), "cells");
        for cell in grid.cells() {
            let c = grid.centroid(cell).unwrap();
            assert_eq!(idx.lookup(&c).unwrap().leaf_id, partition.region_of(cell));
        }
    }

    #[test]
    fn boundary_points_follow_grid_semantics() {
        let grid = grid8();
        let tree = median_tree(&grid);
        let snapshot = ModelSnapshot::uniform(tree.num_leaves(), 0.5).unwrap();
        let idx = FrozenIndex::compile(&tree, &grid, &snapshot).unwrap();
        // Corners, edge midpoints and interior cut lines.
        for p in [
            Point::new(0.0, 0.0),
            Point::new(1.0, 0.0),
            Point::new(0.0, 1.0),
            Point::new(1.0, 1.0),
            Point::new(0.5, 0.5),
            Point::new(0.5, 0.0),
            Point::new(1.0, 0.5),
            Point::new(0.25, 0.75),
        ] {
            let cell = grid.locate(&p).unwrap();
            let (row, col) = grid.row_col(cell);
            assert_eq!(
                idx.lookup(&p).unwrap().leaf_id,
                tree.locate(row, col).unwrap(),
                "at {p:?}"
            );
        }
        assert!(idx.lookup(&Point::new(1.0001, 0.5)).is_none());
        assert!(idx.lookup(&Point::new(f64::NAN, 0.5)).is_none());
    }

    #[test]
    fn decisions_surface_snapshot_scores() {
        let grid = grid8();
        let partition = Partition::uniform(&grid, 1, 2).unwrap();
        let snapshot = ModelSnapshot::new(vec![0.2, 0.9], vec![0.3, -0.1], vec![0, 1]).unwrap();
        let idx = FrozenIndex::from_partition(&partition, &grid, &snapshot).unwrap();
        let west = idx.lookup(&Point::new(0.1, 0.5)).unwrap();
        assert_eq!(west.leaf_id, 0);
        assert_eq!(west.group, 0);
        assert!((west.raw_score - 0.2).abs() < 1e-12);
        assert!((west.calibrated_score - 0.5).abs() < 1e-12);
        let east = idx.lookup(&Point::new(0.9, 0.5)).unwrap();
        assert_eq!(east.leaf_id, 1);
        assert!((east.calibrated_score - 0.8).abs() < 1e-12);
    }

    #[test]
    fn cell_keyed_lookup_agrees_with_point_lookup_everywhere() {
        let grid = grid8();
        let tree = median_tree(&grid);
        let snapshot = ModelSnapshot::uniform(tree.num_leaves(), 0.5).unwrap();
        let by_tree = FrozenIndex::compile(&tree, &grid, &snapshot).unwrap();
        let partition = Partition::uniform(&grid, 2, 4).unwrap();
        let by_cells = FrozenIndex::from_partition(
            &partition,
            &grid,
            &ModelSnapshot::uniform(partition.num_regions(), 0.5).unwrap(),
        )
        .unwrap();
        for idx in [&by_tree, &by_cells] {
            // Every cell boundary crossing plus the map edges: the
            // points where a cache key derived differently from the
            // lookup would hand out a neighbor's decision.
            for i in 0..=8 {
                for j in 0..=8 {
                    for (dx, dy) in [(0.0, 0.0), (1e-12, 0.0), (0.0, 1e-12), (-1e-12, -1e-12)] {
                        let p = Point::new(
                            (i as f64 / 8.0 + dx).clamp(0.0, 1.0),
                            (j as f64 / 8.0 + dy).clamp(0.0, 1.0),
                        );
                        let cell = idx.cell_index(&p).unwrap();
                        assert_eq!(
                            idx.lookup_cell(cell).unwrap(),
                            idx.lookup(&p).unwrap(),
                            "cell {cell} at {p:?}"
                        );
                    }
                }
            }
            assert!(idx.cell_index(&Point::new(1.5, 0.5)).is_none());
            assert!(idx.cell_index(&Point::new(f64::NAN, 0.5)).is_none());
            assert!(idx.lookup_cell(64).is_none());
            assert!(idx.lookup_cell(u64::MAX).is_none());
        }
    }

    #[test]
    fn reciprocal_fast_path_is_bit_identical_to_grid_cell_of() {
        // Power-of-two cell sizes arm the reciprocal multiply; a dense
        // sweep of awkward fractions must agree with `Grid::cell_of`
        // bit for bit (both then feed the same floor-and-clamp).
        let grid = grid8();
        let tree = median_tree(&grid);
        let snapshot = ModelSnapshot::uniform(tree.num_leaves(), 0.5).unwrap();
        let index = FrozenIndex::compile(&tree, &grid, &snapshot).unwrap();
        assert!(index.inv_wh.is_some(), "1/8 cells must arm the fast path");
        for i in 0..=997 {
            for j in [0, 1, 501, 996, 997] {
                let p = Point::new(i as f64 / 997.0, j as f64 / 997.0);
                let (row, col) = grid.cell_of(&p).unwrap();
                assert_eq!(
                    index.cell_index(&p),
                    Some((row * grid.cols() + col) as u64),
                    "at {p:?}"
                );
            }
        }
        // Non-power-of-two cell sizes must fall back to the division.
        let odd = Grid::new(Rect::unit(), 3, 5).unwrap();
        let partition = Partition::uniform(&odd, 1, 5).unwrap();
        let by_cells = FrozenIndex::from_partition(
            &partition,
            &odd,
            &ModelSnapshot::uniform(partition.num_regions(), 0.5).unwrap(),
        )
        .unwrap();
        assert!(
            by_cells.inv_wh.is_none(),
            "1/3 and 1/5 are not powers of two"
        );
        let p = Point::new(0.4, 0.7);
        let (row, col) = odd.cell_of(&p).unwrap();
        assert_eq!(
            by_cells.cell_index(&p),
            Some((row * odd.cols() + col) as u64)
        );
    }

    #[test]
    fn batch_matches_singles_and_reports_bad_index() {
        let grid = grid8();
        let tree = median_tree(&grid);
        let snapshot = ModelSnapshot::uniform(tree.num_leaves(), 0.5).unwrap();
        let idx = FrozenIndex::compile(&tree, &grid, &snapshot).unwrap();
        let points: Vec<Point> = (0..50)
            .map(|i| Point::new((i as f64 * 0.02) % 1.0, (i as f64 * 0.07) % 1.0))
            .collect();
        let mut out = Vec::new();
        idx.lookup_batch(&points, &mut out).unwrap();
        assert_eq!(out.len(), points.len());
        for (p, d) in points.iter().zip(&out) {
            assert_eq!(idx.lookup(p).unwrap(), *d);
        }
        let mut bad = points.clone();
        bad[17] = Point::new(5.0, 5.0);
        match idx.lookup_batch(&bad, &mut out) {
            Err(ServeError::PointOutOfBounds { index: 17, .. }) => {}
            other => panic!("expected PointOutOfBounds at 17, got {other:?}"),
        }
        // A failed batch never leaks partial decisions.
        assert!(out.is_empty());
    }

    #[test]
    fn range_query_agrees_with_kd_tree() {
        let grid = grid8();
        let tree = median_tree(&grid);
        let snapshot = ModelSnapshot::uniform(tree.num_leaves(), 0.5).unwrap();
        let idx = FrozenIndex::compile(&tree, &grid, &snapshot).unwrap();
        // Whole map → every leaf.
        let all = idx.range_query(&Rect::unit());
        assert_eq!(all, (0..tree.num_leaves()).collect::<Vec<_>>());
        // A strictly interior sliver inside one leaf column.
        let sliver = Rect::new(0.01, 0.01, 0.02, 0.02).unwrap();
        let got = idx.range_query(&sliver);
        assert_eq!(got.len(), 1);
        let cell = grid.locate(&Point::new(0.015, 0.015)).unwrap();
        let (row, col) = grid.row_col(cell);
        assert_eq!(got[0], tree.locate(row, col).unwrap());
        // Off-map queries return nothing.
        assert!(idx
            .range_query(&Rect::new(2.0, 2.0, 3.0, 3.0).unwrap())
            .is_empty());
    }

    #[test]
    fn single_leaf_tree_serves_the_whole_map() {
        // A 1×1 grid admits no split, so even height 1 yields a lone
        // leaf — exercising the leaf-root encoding of the flat tree.
        let grid = Grid::unit(1).unwrap();
        let stats = CellStats::new(&grid, &[5.0], &[0.0], &[0.0]).unwrap();
        let tree = build_kd_tree(
            &stats,
            &fsi_core::MedianSplit,
            &BuildConfig {
                height: 1,
                ..BuildConfig::default()
            },
        )
        .unwrap();
        assert_eq!(tree.num_leaves(), 1);
        let snapshot = ModelSnapshot::uniform(1, 0.7).unwrap();
        let idx = FrozenIndex::compile(&tree, &grid, &snapshot).unwrap();
        assert_eq!(idx.lookup(&Point::new(0.3, 0.8)).unwrap().leaf_id, 0);
        assert_eq!(idx.range_query(&Rect::unit()), vec![0]);
    }

    #[test]
    fn compile_validates_inputs() {
        let grid = grid8();
        let tree = median_tree(&grid);
        let other_grid = Grid::unit(4).unwrap();
        let good = ModelSnapshot::uniform(tree.num_leaves(), 0.5).unwrap();
        assert!(matches!(
            FrozenIndex::compile(&tree, &other_grid, &good),
            Err(ServeError::GridMismatch { .. })
        ));
        let short = ModelSnapshot::uniform(tree.num_leaves() - 1, 0.5).unwrap();
        assert!(matches!(
            FrozenIndex::compile(&tree, &grid, &short),
            Err(ServeError::SnapshotMismatch { .. })
        ));
        let partition = Partition::uniform(&grid, 2, 2).unwrap();
        assert!(matches!(
            FrozenIndex::from_partition(&partition, &other_grid, &good),
            Err(ServeError::GridMismatch { .. })
        ));
    }

    #[test]
    fn clipped_index_agrees_with_global_inside_its_block() {
        let grid = grid8();
        let tree = median_tree(&grid);
        let by_tree = FrozenIndex::compile(
            &tree,
            &grid,
            &ModelSnapshot::uniform(tree.num_leaves(), 0.5).unwrap(),
        )
        .unwrap();
        let partition = Partition::uniform(&grid, 2, 4).unwrap();
        // Non-uniform scores so the slot → global remap is exercised.
        let snapshot = ModelSnapshot::new(
            (0..8).map(|i| i as f64 / 10.0).collect(),
            vec![0.01; 8],
            vec![0, 1, 2, 3, 4, 5, 6, 7],
        )
        .unwrap();
        let by_cells = FrozenIndex::from_partition(&partition, &grid, &snapshot).unwrap();
        let quads = [
            Rect::new(0.0, 0.0, 0.49, 0.49).unwrap(),
            Rect::new(0.5, 0.0, 1.0, 0.49).unwrap(),
            Rect::new(0.0, 0.5, 0.49, 1.0).unwrap(),
            Rect::new(0.5, 0.5, 1.0, 1.0).unwrap(),
        ];
        for full in [&by_tree, &by_cells] {
            for rect in &quads {
                let part = full.compile_clipped(rect).unwrap();
                assert!(part.heap_bytes() < full.heap_bytes());
                let block = part.clip.as_ref().unwrap().cells;
                let mut inside_pts = Vec::new();
                let mut outside_pts = Vec::new();
                for cell in grid.cells() {
                    let (row, col) = grid.row_col(cell);
                    let c = grid.centroid(cell).unwrap();
                    let inside = row >= block.row_start
                        && row < block.row_end
                        && col >= block.col_start
                        && col < block.col_end;
                    if inside {
                        inside_pts.push(c);
                        assert_eq!(part.lookup(&c), full.lookup(&c), "cell {cell}");
                        assert_eq!(part.cell_index(&c), full.cell_index(&c));
                        assert_eq!(part.lookup_cell(cell as u64), full.lookup_cell(cell as u64));
                    } else {
                        outside_pts.push(c);
                        assert!(part.lookup(&c).is_none(), "cell {cell}");
                        assert!(part.cell_index(&c).is_none());
                        assert!(part.lookup_cell(cell as u64).is_none());
                    }
                }
                let (mut got, mut want) = (Vec::new(), Vec::new());
                part.lookup_batch(&inside_pts, &mut got).unwrap();
                full.lookup_batch(&inside_pts, &mut want).unwrap();
                assert_eq!(got, want);
                // An out-of-block point fails a shard batch the same way
                // an out-of-map point fails a single-box batch.
                let mut bad = inside_pts.clone();
                bad.push(outside_pts[0]);
                assert!(matches!(
                    part.lookup_batch(&bad, &mut got),
                    Err(ServeError::PointOutOfBounds { .. })
                ));
                assert!(got.is_empty());
            }
        }
    }

    #[test]
    fn union_of_clipped_ranges_matches_single_box() {
        let grid = grid8();
        let tree = median_tree(&grid);
        let snapshot = ModelSnapshot::uniform(tree.num_leaves(), 0.5).unwrap();
        let full = FrozenIndex::compile(&tree, &grid, &snapshot).unwrap();
        let quads = [
            Rect::new(0.0, 0.0, 0.5, 0.5).unwrap(),
            Rect::new(0.5, 0.0, 1.0, 0.5).unwrap(),
            Rect::new(0.0, 0.5, 0.5, 1.0).unwrap(),
            Rect::new(0.5, 0.5, 1.0, 1.0).unwrap(),
        ];
        let parts: Vec<_> = quads
            .iter()
            .map(|r| full.compile_clipped(r).unwrap())
            .collect();
        for query in [
            Rect::unit(),
            Rect::new(0.2, 0.2, 0.8, 0.8).unwrap(),
            Rect::new(0.01, 0.01, 0.02, 0.02).unwrap(),
            Rect::new(0.45, 0.45, 0.55, 0.55).unwrap(),
        ] {
            let mut union: Vec<usize> = parts.iter().flat_map(|p| p.range_query(&query)).collect();
            union.sort_unstable();
            union.dedup();
            assert_eq!(union, full.range_query(&query), "query {query:?}");
        }
        assert!(parts[0]
            .range_query(&Rect::new(0.9, 0.9, 0.95, 0.95).unwrap())
            .is_empty());
    }

    #[test]
    fn clipping_to_one_leaf_contracts_the_tree() {
        let grid = grid8();
        let tree = median_tree(&grid);
        let snapshot = ModelSnapshot::uniform(tree.num_leaves(), 0.5).unwrap();
        let full = FrozenIndex::compile(&tree, &grid, &snapshot).unwrap();
        let part = full
            .compile_clipped(&Rect::new(0.01, 0.01, 0.02, 0.02).unwrap())
            .unwrap();
        assert_eq!(part.num_leaves(), 1);
        let Backend::Tree(ft) = &part.backend else {
            panic!("tree-compiled index must keep the tree backend");
        };
        assert!(ft.nodes.is_empty(), "single-leaf clip contracts every cut");
        let p = Point::new(0.015, 0.015);
        assert_eq!(part.lookup(&p), full.lookup(&p));
        assert_eq!(
            part.range_query(&Rect::new(0.01, 0.01, 0.02, 0.02).unwrap())
                .len(),
            1
        );
    }

    #[test]
    fn clip_validates_inputs_and_reports_block_bounds() {
        let grid = grid8();
        let tree = median_tree(&grid);
        let snapshot = ModelSnapshot::uniform(tree.num_leaves(), 0.5).unwrap();
        let full = FrozenIndex::compile(&tree, &grid, &snapshot).unwrap();
        let rect = Rect::new(0.0, 0.0, 0.5, 0.5).unwrap();
        let part = full.compile_clipped(&rect).unwrap();
        // The 0.5 closed corner floors into cell (4, 4), so the block is
        // 5×5 cells and the reported bounds snap to cell edges.
        assert_eq!(part.bounds(), &Rect::new(0.0, 0.0, 0.625, 0.625).unwrap());
        assert!(part.clip_rect().is_some());
        assert!(full.clip_rect().is_none());
        assert!(matches!(
            part.compile_clipped(&rect),
            Err(ServeError::InvalidTopology(_))
        ));
        assert!(matches!(
            full.compile_clipped(&Rect::new(2.0, 2.0, 3.0, 3.0).unwrap()),
            Err(ServeError::InvalidTopology(_))
        ));
    }

    #[test]
    fn footprint_is_reported() {
        let grid = grid8();
        let tree = median_tree(&grid);
        let snapshot = ModelSnapshot::uniform(tree.num_leaves(), 0.5).unwrap();
        let idx = FrozenIndex::compile(&tree, &grid, &snapshot).unwrap();
        // 7 internal nodes * 24B + 8 leaves * (3*8B + 4B) = 392.
        assert_eq!(idx.heap_bytes(), 7 * 24 + 8 * 28);
        assert_eq!(idx.grid_shape(), (8, 8));
        assert_eq!(idx.num_leaves(), 8);
        assert_eq!(idx.offsets(), &[0.0; 8]);
    }
}
