//! Background drift-triggered index maintenance.
//!
//! [`MaintenanceHandle`] owns a thread that periodically asks an
//! ingest-enabled [`QueryService`] to
//! [`maintain`](crate::QueryService::maintain) itself: measure drift over
//! the delta buffer, and when the [`MaintenanceSpec`] policy trips, merge
//! the buffered points into the training set, retrain, and republish
//! through the same two-phase rebuild barrier manual rebuilds use.
//! Readers keep answering from the previous generation throughout; the
//! decision cache invalidates implicitly when the generation bumps.
//!
//! A failed pass is logged into the service's error telemetry by
//! `maintain` itself and retried on the next poll — the buffered points
//! are restored, never dropped.

use crate::error::ServeError;
use crate::service::QueryService;
use fsi_ingest::MaintenanceSpec;
use fsi_pipeline::PipelineSpec;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// How long the maintenance thread sleeps between shutdown-flag checks
/// while waiting out a poll interval. Keeps `stop` latency bounded even
/// under multi-second poll intervals.
const SHUTDOWN_SLICE: Duration = Duration::from_millis(25);

/// A handle to a background maintenance thread.
///
/// Spawned over a clone of an ingest-enabled service (clones share the
/// delta buffer, ingest log and index handles with the original, so a
/// rebuild published here is visible to every other clone). Dropping the
/// handle stops the thread; [`stop`](MaintenanceHandle::stop) does the
/// same and reports how many rebuilds the thread published.
#[derive(Debug)]
pub struct MaintenanceHandle {
    stop: Arc<AtomicBool>,
    rebuilds: Arc<AtomicU64>,
    thread: Option<JoinHandle<()>>,
}

impl MaintenanceHandle {
    /// Spawns the maintenance loop over `service`.
    ///
    /// Validates `policy` and requires the service to have been built
    /// [`with_ingest`](crate::QueryService::with_ingest); each pass
    /// retrains with `spec` when the policy trips.
    ///
    /// # Errors
    ///
    /// [`ServeError::Ingest`] when the policy is invalid and
    /// [`ServeError::IngestUnavailable`] when the service has no
    /// streaming-ingestion state to maintain.
    pub fn spawn(
        mut service: QueryService,
        policy: MaintenanceSpec,
        spec: PipelineSpec,
    ) -> Result<Self, ServeError> {
        policy.validate()?;
        if !service.ingest_enabled() {
            return Err(ServeError::IngestUnavailable);
        }
        let stop = Arc::new(AtomicBool::new(false));
        let rebuilds = Arc::new(AtomicU64::new(0));
        let stop_flag = Arc::clone(&stop);
        let rebuilt = Arc::clone(&rebuilds);
        let thread = std::thread::Builder::new()
            .name("fsi-maintenance".into())
            .spawn(move || {
                while !stop_flag.load(Ordering::Acquire) {
                    // A failed pass already landed in the service's
                    // error telemetry and restored the buffered points;
                    // the next poll retries it.
                    if let Ok(Some(_)) = service.maintain(&policy, &spec) {
                        rebuilt.fetch_add(1, Ordering::Relaxed);
                    }
                    let mut remaining = policy.poll_interval();
                    while !remaining.is_zero() && !stop_flag.load(Ordering::Acquire) {
                        let slice = remaining.min(SHUTDOWN_SLICE);
                        std::thread::sleep(slice);
                        remaining = remaining.saturating_sub(slice);
                    }
                }
            })
            .expect("spawning the maintenance thread failed");
        Ok(MaintenanceHandle {
            stop,
            rebuilds,
            thread: Some(thread),
        })
    }

    /// Number of maintenance rebuilds published so far.
    pub fn rebuilds(&self) -> u64 {
        self.rebuilds.load(Ordering::Relaxed)
    }

    /// Stops the thread and returns how many rebuilds it published.
    pub fn stop(mut self) -> u64 {
        self.join();
        self.rebuilds.load(Ordering::Relaxed)
    }

    fn join(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(thread) = self.thread.take() {
            // A panicked maintenance thread already printed its message;
            // there is nothing more to surface here.
            let _ = thread.join();
        }
    }
}

impl Drop for MaintenanceHandle {
    fn drop(&mut self) {
        self.join();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fsi_data::synth::city::{CityConfig, CityGenerator};
    use fsi_pipeline::{Method, TaskSpec};
    use fsi_proto::{Request, Response};
    use std::sync::Arc;

    fn dataset() -> fsi_data::SpatialDataset {
        CityGenerator::new(CityConfig {
            n_individuals: 200,
            grid_side: 8,
            seed: 5,
            ..Default::default()
        })
        .unwrap()
        .generate()
        .unwrap()
    }

    fn spec() -> PipelineSpec {
        PipelineSpec::new(TaskSpec::act(), Method::FairKd, 3)
    }

    fn ingest_service() -> QueryService {
        let dataset = Arc::new(dataset());
        let (index, _run) = crate::build_index(&dataset, &spec()).unwrap();
        QueryService::new(crate::Topology::single(crate::IndexHandle::new(index)))
            .with_rebuild(Arc::clone(&dataset))
            .with_ingest(TaskSpec::act())
            .unwrap()
    }

    #[test]
    fn spawn_requires_ingest() {
        let dataset = dataset();
        let (index, _run) = crate::build_index(&dataset, &spec()).unwrap();
        let service = QueryService::new(crate::Topology::single(crate::IndexHandle::new(index)));
        let err = MaintenanceHandle::spawn(service, MaintenanceSpec::default(), spec());
        assert!(matches!(err, Err(ServeError::IngestUnavailable)));
    }

    #[test]
    fn spawn_validates_policy() {
        let policy = MaintenanceSpec {
            drift_threshold: -1.0,
            ..Default::default()
        };
        let err = MaintenanceHandle::spawn(ingest_service(), policy, spec());
        assert!(matches!(err, Err(ServeError::Ingest(_))));
    }

    #[test]
    fn background_thread_publishes_when_occupancy_trips() {
        let mut front = ingest_service();
        let policy = MaintenanceSpec {
            drift_threshold: 1e18,
            max_buffered: 4,
            max_staleness_ms: 0,
            poll_interval_ms: 5,
        };
        let before = match front.dispatch(&Request::Stats) {
            Response::Stats { stats } => stats.generations.iter().copied().max().unwrap_or(0),
            other => panic!("unexpected response: {other:?}"),
        };
        let handle = MaintenanceHandle::spawn(front.clone(), policy, spec()).unwrap();
        for i in 0..8u32 {
            let response = front.dispatch(&Request::Ingest {
                x: 0.1 + 0.09 * f64::from(i),
                y: 0.4,
                group: i % 2,
                label: i % 3 == 0,
            });
            assert!(matches!(response, Response::Ingested { .. }));
        }
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        while handle.rebuilds() == 0 && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        let published = handle.stop();
        assert!(published >= 1, "maintenance thread never published");
        let after = match front.dispatch(&Request::Stats) {
            Response::Stats { stats } => stats.generations.iter().copied().max().unwrap_or(0),
            other => panic!("unexpected response: {other:?}"),
        };
        assert!(after > before, "generation did not advance: {after}");
    }

    #[test]
    fn idle_thread_stops_promptly() {
        let policy = MaintenanceSpec {
            poll_interval_ms: 60_000,
            ..Default::default()
        };
        let handle = MaintenanceHandle::spawn(ingest_service(), policy, spec()).unwrap();
        let started = std::time::Instant::now();
        assert_eq!(handle.stop(), 0);
        assert!(started.elapsed() < Duration::from_secs(5));
    }
}
