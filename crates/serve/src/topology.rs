//! The shard topology: a `rows × cols` spatial partition of the served
//! map where each shard is *any* [`ShardBackend`] — an in-process
//! [`LocalShard`] over an [`IndexHandle`], or a remote process speaking
//! the `fsi-proto` protocol over a transport-owned client.
//!
//! This is the seam that takes serving from "one box of replicas" to a
//! scatter-gather coordinator over partial indexes:
//!
//! * [`Topology`] owns the routing geometry (the same closed-bounds
//!   floor-and-clamp semantics as `Grid::cell_of`) plus one boxed
//!   backend per shard.
//! * [`TopologySpec`] is the validated, serde-round-trippable
//!   description — `rows × cols` and one [`BackendSpec`] per shard
//!   (`"local"` or `"http://host:port"`) — that configuration files and
//!   CLIs build topologies from.
//! * [`Topology::partitioned`] compiles a **partial index** per local
//!   shard ([`crate::FrozenIndex::compile_clipped`]), so per-shard heap
//!   scales *down* with shard count instead of replicating.
//!
//! Remote backends cannot be constructed here (HTTP lives above this
//! crate in the dependency graph); [`Topology::from_spec`] takes a
//! connector closure, and the `fsi` facade supplies one that dials its
//! keep-alive HTTP client.

use crate::error::ServeError;
use crate::frozen::FrozenIndex;
use crate::handle::{IndexHandle, IndexReader};
use crate::shard::ShardRouter;
use fsi_geo::{Point, Rect};
use fsi_proto::{
    ErrorCode, HealthBody, MetricsBody, Request, Response, ShardHealthBody, StatsBody,
};
use serde::{Deserialize, Serialize, Value};
use std::sync::Mutex;

/// Transport-level counters a remote backend accumulates below the
/// protocol — the raw feed the metrics scrape folds into
/// [`fsi_proto::ShardObsBody`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TransportStats {
    /// Re-dial attempts since the backend was constructed.
    pub reconnects: u64,
    /// Requests that hit a transport-level failure (including ones a
    /// reconnect then recovered).
    pub failures: u64,
}

/// What one shard slot is backed by, for stats and diagnostics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardDescriptor {
    /// Backend kind: `"local"` or `"http"`.
    pub kind: &'static str,
    /// Remote address (`host:port`) when the shard lives behind a
    /// socket; `None` for in-process shards.
    pub addr: Option<String>,
}

/// One shard of a serving topology, local or remote.
///
/// The contract mirrors [`crate::QueryService::dispatch`]: `dispatch`
/// never fails at the Rust level — transport and serving failures come
/// back as [`Response::Error`] — so a coordinator can treat every shard
/// uniformly.
pub trait ShardBackend: Send + Sync {
    /// Answers one protocol request against this shard.
    fn dispatch(&self, request: &Request) -> Response;

    /// Kind and address, for per-shard stats reporting.
    fn descriptor(&self) -> ShardDescriptor;

    /// The generation of the index this shard currently serves. Remote
    /// implementations may need a round-trip; `0` means unreachable.
    fn generation(&self) -> u64;

    /// Downcast hook for coordinators: local shards expose their staged
    /// rebuild state and readers; remote shards return `None`.
    fn as_local(&self) -> Option<&LocalShard> {
        None
    }

    /// The backend itself, when it *is* a plain in-process
    /// [`LocalShard`] — not a wrapper forwarding to one. Unlike
    /// [`ShardBackend::as_local`] (which wrappers forward so topology
    /// compilation can reach the underlying handle), wrappers must
    /// leave this at the `None` default: the resilience layer uses it
    /// to dispatch reads statically past the vtable on its healthy
    /// fast path, and devirtualizing through a wrapper would silently
    /// bypass whatever the wrapper injects.
    fn as_plain_local(&self) -> Option<&LocalShard> {
        None
    }

    /// Transport-level telemetry for the metrics scrape; `None` for
    /// backends with no transport underneath (in-process shards).
    fn transport_stats(&self) -> Option<TransportStats> {
        None
    }

    /// Health of this slot for the coordinator's [`HealthBody`]: breaker
    /// states and per-replica counters. `None` means the backend has no
    /// resilience layer — the coordinator reports it as plainly `"up"`.
    /// The `shard` field is filled in by the coordinator (a backend does
    /// not know its slot index).
    fn health(&self) -> Option<ShardHealthBody> {
        None
    }
}

/// An in-process shard: an [`IndexHandle`] (optionally restricted to a
/// clip rectangle) plus the staging slot of the two-phase rebuild
/// protocol.
///
/// The staging slot lives here — inside the shared topology — rather
/// than in any service clone, because a coordinator's *prepare* and
/// *commit* may arrive on different transport workers: whichever clone
/// receives the commit must find the index its sibling staged.
pub struct LocalShard {
    handle: IndexHandle,
    /// When set, published indexes are clipped to this sub-rectangle
    /// ([`FrozenIndex::compile_clipped`]), keeping the shard partial.
    clip: Option<Rect>,
    /// Phase-one output of a two-phase rebuild, awaiting the commit.
    staged: Mutex<Option<FrozenIndex>>,
}

impl LocalShard {
    /// A full (unclipped) shard over `handle`, sharing hot-swaps with
    /// every other user of the handle.
    pub fn new(handle: IndexHandle) -> Self {
        Self {
            handle,
            clip: None,
            staged: Mutex::new(None),
        }
    }

    /// A partial shard: compiles the clip of `index` to `rect` and
    /// serves it; staged rebuilds are re-clipped to the same rectangle.
    pub fn clipped(index: &FrozenIndex, rect: Rect) -> Result<Self, ServeError> {
        let partial = index.compile_clipped(&rect)?;
        Ok(Self {
            handle: IndexHandle::new(partial),
            clip: Some(rect),
            staged: Mutex::new(None),
        })
    }

    /// The handle this shard serves from.
    pub fn handle(&self) -> &IndexHandle {
        &self.handle
    }

    /// A reader for this shard's live index.
    pub fn reader(&self) -> IndexReader {
        self.handle.reader()
    }

    /// Phase one of a two-phase rebuild: clip (when partial) and stage
    /// the freshly built global `index` without serving it. Returns the
    /// staged index's `(num_leaves, heap_bytes)`.
    pub fn stage(&self, index: &FrozenIndex) -> Result<(usize, usize), ServeError> {
        let staged = match &self.clip {
            Some(rect) => index.compile_clipped(rect)?,
            None => index.clone(),
        };
        let report = (staged.num_leaves(), staged.heap_bytes());
        *self.staged.lock().expect("staging lock poisoned") = Some(staged);
        Ok(report)
    }

    /// Phase two: publish the staged index (a pointer swap) and return
    /// the new generation. Fails with [`ServeError::NotStaged`] when no
    /// prepare preceded the commit.
    pub fn commit(&self) -> Result<u64, ServeError> {
        let staged = self
            .staged
            .lock()
            .expect("staging lock poisoned")
            .take()
            .ok_or(ServeError::NotStaged)?;
        let (generation, _old) = self.handle.publish(staged);
        Ok(generation)
    }

    /// Drops any staged index (a failed prepare fan-out aborts here so
    /// a later unrelated commit cannot publish it).
    pub fn abort(&self) {
        *self.staged.lock().expect("staging lock poisoned") = None;
    }

    /// A read-serving twin: shares the published-index handle (so
    /// hot-swaps stay visible and answers are bit-identical) but owns
    /// an empty staging slot of its own. The resilience layer keeps a
    /// twin per local replica to dispatch pure reads statically; the
    /// two-phase rebuild barrier must keep going to the original shard,
    /// whose staging slot is the real one.
    pub fn read_twin(&self) -> Self {
        Self {
            handle: self.handle.clone(),
            clip: self.clip,
            staged: Mutex::new(None),
        }
    }
}

impl ShardBackend for LocalShard {
    /// Serves directly off the live index — the same answers (bit for
    /// bit, error text included) a [`crate::QueryService`] gives, minus
    /// the cache and rebuild layers, so local-vs-remote differential
    /// tests can compare backends uniformly.
    #[inline]
    fn dispatch(&self, request: &Request) -> Response {
        let index = self.handle.load();
        match request {
            Request::Lookup { x, y } => match index.lookup(&Point::new(*x, *y)) {
                Some(d) => Response::Decision { decision: d.into() },
                None => Response::error(
                    ErrorCode::OutOfBounds,
                    format!("point ({x}, {y}) is outside the served map bounds"),
                ),
            },
            Request::LookupBatch { points } => {
                let mut decisions = Vec::with_capacity(points.len());
                for (i, wp) in points.iter().enumerate() {
                    match index.lookup(&Point::new(wp.x, wp.y)) {
                        Some(d) => decisions.push(d.into()),
                        None => {
                            return Response::error(
                                ErrorCode::OutOfBounds,
                                format!(
                                    "point #{i} at ({}, {}) is outside the index bounds",
                                    wp.x, wp.y
                                ),
                            )
                        }
                    }
                }
                Response::Decisions { decisions }
            }
            Request::RangeQuery { rect } => {
                match Rect::new(rect.min_x, rect.min_y, rect.max_x, rect.max_y) {
                    Ok(query) => Response::Regions {
                        ids: index.range_query(&query),
                    },
                    Err(e) => Response::error(ErrorCode::MalformedRequest, e.to_string()),
                }
            }
            Request::Stats => Response::Stats {
                stats: Box::new(StatsBody {
                    shards: 1,
                    generations: vec![self.handle.generation()],
                    num_leaves: index.num_leaves(),
                    heap_bytes: index.heap_bytes(),
                    backend: index.backend_name().to_string(),
                    cache: None,
                    per_shard: None,
                    metrics: None,
                    health: None,
                }),
            },
            // A bare local shard has no resilience layer; it is up by
            // construction (the process answering is the shard).
            Request::Health => Response::Health {
                health: Box::new(HealthBody {
                    shards: vec![ShardHealthBody {
                        shard: 0,
                        kind: "local".into(),
                        addr: None,
                        state: "up".into(),
                        replicas: Vec::new(),
                    }],
                }),
            },
            Request::Rebuild { .. } | Request::RebuildPrepare { .. } => Response::error(
                ErrorCode::RebuildUnavailable,
                "local shard backends are rebuilt by their coordinator",
            ),
            // Same story for the write path: the coordinator owns the
            // delta buffer; a bare local shard has nothing to append to.
            Request::Ingest { .. } | Request::IngestBatch { .. } => Response::error(
                ErrorCode::RebuildUnavailable,
                "local shard backends ingest through their coordinator",
            ),
            Request::RebuildCommit => match self.commit() {
                Ok(generation) => Response::Committed { generation },
                Err(e) => Response::error(ErrorCode::NotPrepared, e.to_string()),
            },
            Request::RebuildAbort => {
                self.abort();
                Response::Aborted
            }
            // A bare local shard has no recorder of its own — its
            // telemetry is what the coordinating service records about
            // it — so the scrape answer is the all-zero snapshot.
            Request::Metrics => Response::Metrics {
                metrics: Box::new(MetricsBody::empty()),
            },
        }
    }

    fn descriptor(&self) -> ShardDescriptor {
        ShardDescriptor {
            kind: "local",
            addr: None,
        }
    }

    fn generation(&self) -> u64 {
        self.handle.generation()
    }

    fn as_local(&self) -> Option<&LocalShard> {
        Some(self)
    }

    fn as_plain_local(&self) -> Option<&LocalShard> {
        Some(self)
    }
}

/// How one shard slot of a [`TopologySpec`] is backed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BackendSpec {
    /// Served in-process from a partial index.
    Local,
    /// Served by a remote shard process at `host:port`, speaking the
    /// `fsi-proto` protocol over HTTP.
    Http(String),
    /// Served by a failover replica set: every member serves the same
    /// clip rectangle and a resilience-aware connector (see
    /// [`SlotConnector::replica_set`]) arbitrates between them.
    Replicas(Vec<BackendSpec>),
}

impl BackendSpec {
    /// The spec's wire form: `"local"`, `"http://host:port"` or
    /// `{"replicas": [...]}`.
    pub fn as_wire(&self) -> String {
        match self {
            BackendSpec::Local => "local".to_string(),
            BackendSpec::Http(addr) => format!("http://{addr}"),
            BackendSpec::Replicas(members) => format!(
                "replicas[{}]",
                members
                    .iter()
                    .map(BackendSpec::as_wire)
                    .collect::<Vec<_>>()
                    .join(", ")
            ),
        }
    }
}

impl Serialize for BackendSpec {
    fn to_value(&self) -> Value {
        match self {
            BackendSpec::Replicas(members) => Value::Object(vec![(
                "replicas".to_string(),
                Value::Array(members.iter().map(Serialize::to_value).collect()),
            )]),
            other => Value::Str(other.as_wire()),
        }
    }
}

impl Deserialize for BackendSpec {
    fn from_value(value: &Value) -> Result<Self, serde::Error> {
        if let Some(entries) = value.as_object() {
            let members = match entries {
                [(key, members)] if key == "replicas" => members,
                _ => {
                    return Err(serde::Error::custom(
                        "backend spec object must have exactly one key, \"replicas\"",
                    ))
                }
            };
            let members = members
                .as_array()
                .ok_or_else(|| serde::Error::custom("\"replicas\" must be an array"))?;
            return Ok(BackendSpec::Replicas(
                members
                    .iter()
                    .map(BackendSpec::from_value)
                    .collect::<Result<_, _>>()?,
            ));
        }
        let s = value
            .as_str()
            .ok_or_else(|| serde::Error::custom("backend spec must be a string or object"))?;
        if s == "local" {
            return Ok(BackendSpec::Local);
        }
        if let Some(addr) = s.strip_prefix("http://") {
            if addr.is_empty() {
                return Err(serde::Error::custom(
                    "http backend spec has an empty address",
                ));
            }
            return Ok(BackendSpec::Http(addr.to_string()));
        }
        Err(serde::Error::custom(format!(
            "backend spec must be \"local\", \"http://host:port\" or {{\"replicas\": [...]}}, got {s:?}"
        )))
    }
}

/// Builds the backend for each slot of a [`TopologySpec`] —
/// [`Topology::from_spec`]'s construction seam.
///
/// Plain connectors are closures (`Fn(&str) -> Result<Box<dyn
/// ShardBackend>, ServeError>` gets a blanket impl); a resilience-aware
/// connector additionally overrides [`SlotConnector::replica_set`] to
/// wrap a slot's members in a failover arbiter (the `fsi-resil`
/// `ReplicaSet`, which lives above this crate in the dependency graph).
pub trait SlotConnector {
    /// Dials one remote shard at `addr` (`host:port`).
    fn connect(&self, addr: &str) -> Result<Box<dyn ShardBackend>, ServeError>;

    /// Wraps a replica slot's constructed members in one arbitrating
    /// backend. The default rejects replica slots, so topologies built
    /// through a plain connector fail loudly instead of silently
    /// serving from one member.
    fn replica_set(
        &self,
        members: Vec<Box<dyn ShardBackend>>,
    ) -> Result<Box<dyn ShardBackend>, ServeError> {
        let _ = members;
        Err(ServeError::InvalidTopology(
            "this connector cannot build replica slots; use a resilience-aware connector".into(),
        ))
    }
}

impl<F> SlotConnector for F
where
    F: Fn(&str) -> Result<Box<dyn ShardBackend>, ServeError>,
{
    fn connect(&self, addr: &str) -> Result<Box<dyn ShardBackend>, ServeError> {
        self(addr)
    }
}

/// A validated, serializable description of a serving topology:
/// `rows × cols` shards in row-major order, each backed per
/// [`BackendSpec`]. The canonical way to configure sharded serving —
/// positional `(rows, cols)` constructors are deprecated shims over it.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TopologySpec {
    /// Shard grid rows.
    pub rows: usize,
    /// Shard grid columns.
    pub cols: usize,
    /// One backend per shard, row-major. Empty means all-local.
    pub shards: Vec<BackendSpec>,
}

impl TopologySpec {
    /// An all-local `rows × cols` topology of partial indexes.
    pub fn local(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            shards: Vec::new(),
        }
    }

    /// The single-shard topology.
    pub fn single() -> Self {
        Self::local(1, 1)
    }

    /// Checks shape and backend coherence; every constructor that
    /// consumes a spec runs this first.
    pub fn validate(&self) -> Result<(), ServeError> {
        if self.rows == 0 || self.cols == 0 {
            return Err(ServeError::InvalidShards {
                rows: self.rows,
                cols: self.cols,
            });
        }
        if !self.shards.is_empty() && self.shards.len() != self.rows * self.cols {
            return Err(ServeError::InvalidTopology(format!(
                "{}x{} topology needs {} shard backends (or none for all-local), got {}",
                self.rows,
                self.cols,
                self.rows * self.cols,
                self.shards.len()
            )));
        }
        for (i, shard) in self.shards.iter().enumerate() {
            Self::validate_backend(i, shard, false)?;
        }
        Ok(())
    }

    fn validate_backend(i: usize, spec: &BackendSpec, in_replicas: bool) -> Result<(), ServeError> {
        match spec {
            BackendSpec::Local => Ok(()),
            BackendSpec::Http(addr) => {
                if addr.is_empty() || !addr.contains(':') {
                    return Err(ServeError::InvalidTopology(format!(
                        "shard {i}: http backend address must be host:port, got {addr:?}"
                    )));
                }
                Ok(())
            }
            BackendSpec::Replicas(members) => {
                if in_replicas {
                    return Err(ServeError::InvalidTopology(format!(
                        "shard {i}: replica sets cannot nest"
                    )));
                }
                if members.is_empty() {
                    return Err(ServeError::InvalidTopology(format!(
                        "shard {i}: a replica set needs at least one member"
                    )));
                }
                for member in members {
                    Self::validate_backend(i, member, true)?;
                }
                Ok(())
            }
        }
    }

    /// The backend of shard `i`, with the all-local default applied.
    pub fn backend(&self, i: usize) -> BackendSpec {
        self.shards.get(i).cloned().unwrap_or(BackendSpec::Local)
    }
}

/// A `rows × cols` spatial partition of the served bounding rectangle
/// over a set of [`ShardBackend`]s — the successor of the replica-only
/// `ShardRouter`.
///
/// Immutable after construction (the backends hot-swap internally), so
/// services keep it behind an `Arc` and route from as many threads as
/// they like. Point lookups route to exactly one shard; range queries
/// fan out to every shard whose sub-rectangle intersects the query.
pub struct Topology {
    bounds: Rect,
    rows: usize,
    cols: usize,
    /// Cached `cols / width` and `rows / height`, so the routing hot
    /// path multiplies instead of dividing.
    inv_w: f64,
    inv_h: f64,
    backends: Vec<Box<dyn ShardBackend>>,
}

impl Topology {
    /// A 1×1 topology over an existing handle — the common single-shard
    /// deployment, sharing hot-swaps with every other user of `handle`.
    pub fn single(handle: IndexHandle) -> Self {
        let bounds = *handle.load().bounds();
        Self::over(bounds, 1, 1, vec![Box::new(LocalShard::new(handle))])
    }

    /// A `rows × cols` topology of **partial indexes**: each shard
    /// serves [`FrozenIndex::compile_clipped`] restricted to its
    /// sub-rectangle (padded by one grid cell so router/index boundary
    /// arithmetic can never disagree), so per-shard heap scales down
    /// with shard count.
    pub fn partitioned(index: FrozenIndex, rows: usize, cols: usize) -> Result<Self, ServeError> {
        if rows == 0 || cols == 0 {
            return Err(ServeError::InvalidShards { rows, cols });
        }
        let bounds = *index.bounds();
        if rows * cols == 1 {
            return Ok(Self::single(IndexHandle::new(index)));
        }
        let mut backends: Vec<Box<dyn ShardBackend>> = Vec::with_capacity(rows * cols);
        for shard in 0..rows * cols {
            let rect = Self::shard_rect(&index, &bounds, rows, cols, shard);
            backends.push(Box::new(LocalShard::clipped(&index, rect)?));
        }
        Ok(Self::over(bounds, rows, cols, backends))
    }

    /// A `rows × cols` topology where every shard serves a full replica
    /// of `index` — the semantics of the deprecated
    /// `ShardRouter::new`, kept for migration and equivalence tests.
    pub fn replicated(index: FrozenIndex, rows: usize, cols: usize) -> Result<Self, ServeError> {
        #[allow(deprecated)]
        Ok(ShardRouter::new(index, rows, cols)?.into())
    }

    /// Builds a topology from a validated [`TopologySpec`]. Local slots
    /// get partial indexes clipped from `index`; remote slots are dialed
    /// through `connect` (the `fsi` facade passes its keep-alive HTTP
    /// client constructor — this crate sits below the transports and
    /// cannot dial sockets itself).
    pub fn from_spec(
        spec: &TopologySpec,
        index: FrozenIndex,
        connect: impl SlotConnector,
    ) -> Result<Self, ServeError> {
        spec.validate()?;
        let (rows, cols) = (spec.rows, spec.cols);
        if rows * cols == 1 && spec.backend(0) == BackendSpec::Local {
            return Ok(Self::single(IndexHandle::new(index)));
        }
        let bounds = *index.bounds();
        let build_member =
            |member: &BackendSpec, shard: usize| -> Result<Box<dyn ShardBackend>, ServeError> {
                match member {
                    BackendSpec::Local => {
                        let rect = Self::shard_rect(&index, &bounds, rows, cols, shard);
                        Ok(Box::new(LocalShard::clipped(&index, rect)?))
                    }
                    BackendSpec::Http(addr) => connect.connect(addr),
                    BackendSpec::Replicas(_) => Err(ServeError::InvalidTopology(
                        "replica sets cannot nest".into(),
                    )),
                }
            };
        let mut backends: Vec<Box<dyn ShardBackend>> = Vec::with_capacity(rows * cols);
        for shard in 0..rows * cols {
            backends.push(match spec.backend(shard) {
                // Every replica member serves the *same* clip rectangle
                // (the slot's), so any member answers bit-identically.
                BackendSpec::Replicas(members) => {
                    let members = members
                        .iter()
                        .map(|m| build_member(m, shard))
                        .collect::<Result<Vec<_>, _>>()?;
                    connect.replica_set(members)?
                }
                single => build_member(&single, shard)?,
            });
        }
        Ok(Self::over(bounds, rows, cols, backends))
    }

    /// The partial index a **shard server** for slot `shard` of a
    /// `rows × cols` topology should serve: a 1×1 topology over the
    /// clipped index, rejecting points outside its block just as the
    /// coordinator would never route them here.
    pub fn partial(
        index: &FrozenIndex,
        rows: usize,
        cols: usize,
        shard: usize,
    ) -> Result<Self, ServeError> {
        if rows == 0 || cols == 0 {
            return Err(ServeError::InvalidShards { rows, cols });
        }
        if shard >= rows * cols {
            return Err(ServeError::InvalidTopology(format!(
                "shard index {shard} out of range for a {rows}x{cols} topology"
            )));
        }
        let bounds = *index.bounds();
        let rect = Self::shard_rect(index, &bounds, rows, cols, shard);
        let local = LocalShard::clipped(index, rect)?;
        Ok(Self::over(bounds, 1, 1, vec![Box::new(local)]))
    }

    /// The clip rectangle of shard `shard`, padded by one grid cell on
    /// each interior side. The pad is a guard band: shard routing uses a
    /// reciprocal multiply while cell assignment divides, and the two
    /// can disagree by one ULP on block edges — a one-cell overlap means
    /// any point the router sends here is inside the clip, while the
    /// *answer* (computed from global coordinates) stays bit-identical
    /// regardless of which shard serves an edge point.
    fn shard_rect(
        index: &FrozenIndex,
        bounds: &Rect,
        rows: usize,
        cols: usize,
        shard: usize,
    ) -> Rect {
        let (grid_rows, grid_cols) = index.grid_shape();
        let (pad_w, pad_h) = (
            bounds.width() / grid_cols as f64,
            bounds.height() / grid_rows as f64,
        );
        let (sw, sh) = (bounds.width() / cols as f64, bounds.height() / rows as f64);
        let (row, col) = (shard / cols, shard % cols);
        Rect::new(
            (bounds.min_x + col as f64 * sw - pad_w).max(bounds.min_x),
            (bounds.min_y + row as f64 * sh - pad_h).max(bounds.min_y),
            (bounds.min_x + (col + 1) as f64 * sw + pad_w).min(bounds.max_x),
            (bounds.min_y + (row + 1) as f64 * sh + pad_h).min(bounds.max_y),
        )
        .expect("shard rectangles of a non-degenerate grid are non-degenerate")
    }

    fn over(bounds: Rect, rows: usize, cols: usize, backends: Vec<Box<dyn ShardBackend>>) -> Self {
        Self {
            bounds,
            rows,
            cols,
            inv_w: cols as f64 / bounds.width(),
            inv_h: rows as f64 / bounds.height(),
            backends,
        }
    }

    /// Number of shards (`rows × cols`).
    pub fn shards(&self) -> usize {
        self.backends.len()
    }

    /// Shard grid shape `(rows, cols)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// The bounding rectangle the shards partition.
    pub fn bounds(&self) -> &Rect {
        &self.bounds
    }

    /// The shard backends, row-major.
    pub fn backends(&self) -> &[Box<dyn ShardBackend>] {
        &self.backends
    }

    /// The shard owning `p`, or `None` when the point is non-finite or
    /// outside the bounds. Same closed-bounds floor-and-clamp semantics
    /// as `Grid::cell_of`, so every in-bounds point routes to exactly
    /// one shard.
    pub fn shard_of(&self, p: &Point) -> Option<usize> {
        if !p.is_finite() || !self.bounds.contains(p) {
            return None;
        }
        let fx = (p.x - self.bounds.min_x) * self.inv_w;
        let fy = (p.y - self.bounds.min_y) * self.inv_h;
        let col = (fx as usize).min(self.cols - 1);
        let row = (fy as usize).min(self.rows - 1);
        Some(row * self.cols + col)
    }

    /// Every shard whose sub-rectangle intersects the closed `query`,
    /// ascending; empty when the query is non-finite or misses the
    /// bounds entirely.
    pub fn covering(&self, query: &Rect) -> Vec<usize> {
        let finite = [query.min_x, query.min_y, query.max_x, query.max_y]
            .iter()
            .all(|v| v.is_finite());
        if !finite {
            return Vec::new();
        }
        let b = &self.bounds;
        let lo = Point::new(query.min_x.max(b.min_x), query.min_y.max(b.min_y));
        let hi = Point::new(query.max_x.min(b.max_x), query.max_y.min(b.max_y));
        if lo.x > hi.x || lo.y > hi.y {
            return Vec::new();
        }
        let (lo, hi) = match (self.shard_of(&lo), self.shard_of(&hi)) {
            (Some(lo), Some(hi)) => (lo, hi),
            _ => return Vec::new(),
        };
        let (row_lo, col_lo) = (lo / self.cols, lo % self.cols);
        let (row_hi, col_hi) = (hi / self.cols, hi % self.cols);
        let mut out = Vec::with_capacity((row_hi - row_lo + 1) * (col_hi - col_lo + 1));
        for row in row_lo..=row_hi {
            for col in col_lo..=col_hi {
                out.push(row * self.cols + col);
            }
        }
        out
    }

    /// Stages and commits a replica of the global `index` on every
    /// **local** shard (clipping partial shards) — the one-box publish
    /// path. Fails without touching anything if any shard is remote:
    /// remote fleets are rebuilt through the two-phase protocol
    /// (`RebuildPrepare` / `RebuildCommit`) by a coordinator service.
    pub fn publish(&self, index: FrozenIndex) -> Result<u64, ServeError> {
        let locals: Vec<&LocalShard> = self
            .backends
            .iter()
            .map(|b| {
                b.as_local().ok_or_else(|| {
                    ServeError::InvalidTopology(
                        "cannot publish directly to a remote shard; use a two-phase rebuild".into(),
                    )
                })
            })
            .collect::<Result<_, _>>()?;
        for local in &locals {
            if let Err(e) = local.stage(&index) {
                for local in &locals {
                    local.abort();
                }
                return Err(e);
            }
        }
        let mut newest = 0;
        for local in &locals {
            newest = newest.max(local.commit()?);
        }
        Ok(newest)
    }

    /// Per-shard generations, in shard order (remote shards may need a
    /// round-trip; `0` means unreachable).
    pub fn generations(&self) -> Vec<u64> {
        self.backends.iter().map(|b| b.generation()).collect()
    }
}

/// Migration shim: a replica router becomes a topology of unclipped
/// local shards sharing the router's handles, so existing
/// `ShardRouter`-built deployments behave identically behind the new
/// API.
impl From<ShardRouter> for Topology {
    fn from(router: ShardRouter) -> Self {
        let (rows, cols) = router.shape();
        let bounds = *router.bounds();
        let backends = router
            .handles()
            .iter()
            .map(|h| Box::new(LocalShard::new(h.clone())) as Box<dyn ShardBackend>)
            .collect();
        Self::over(bounds, rows, cols, backends)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fsi_geo::{Grid, Partition};
    use fsi_pipeline::ModelSnapshot;

    fn index() -> FrozenIndex {
        let grid = Grid::unit(8).unwrap();
        let partition = Partition::uniform(&grid, 2, 2).unwrap();
        let snapshot =
            ModelSnapshot::new(vec![0.2, 0.4, 0.6, 0.8], vec![0.0; 4], vec![0, 1, 2, 3]).unwrap();
        FrozenIndex::from_partition(&partition, &grid, &snapshot).unwrap()
    }

    #[test]
    fn backend_specs_round_trip_and_reject_garbage() {
        for spec in [
            BackendSpec::Local,
            BackendSpec::Http("127.0.0.1:7878".into()),
        ] {
            let wire = serde_json::to_string(&spec).unwrap();
            assert_eq!(serde_json::from_str::<BackendSpec>(&wire).unwrap(), spec);
        }
        assert_eq!(
            serde_json::to_string(&BackendSpec::Http("10.0.0.7:80".into())).unwrap(),
            "\"http://10.0.0.7:80\""
        );
        for bad in ["\"ftp://x\"", "\"http://\"", "\"remote\"", "7"] {
            assert!(serde_json::from_str::<BackendSpec>(bad).is_err(), "{bad}");
        }
    }

    #[test]
    fn topology_specs_round_trip_and_validate() {
        let spec = TopologySpec {
            rows: 2,
            cols: 2,
            shards: vec![
                BackendSpec::Local,
                BackendSpec::Http("127.0.0.1:7001".into()),
                BackendSpec::Http("127.0.0.1:7002".into()),
                BackendSpec::Local,
            ],
        };
        spec.validate().unwrap();
        let wire = serde_json::to_string(&spec).unwrap();
        assert_eq!(serde_json::from_str::<TopologySpec>(&wire).unwrap(), spec);

        assert!(matches!(
            TopologySpec::local(0, 2).validate(),
            Err(ServeError::InvalidShards { .. })
        ));
        let short = TopologySpec {
            rows: 2,
            cols: 2,
            shards: vec![BackendSpec::Local],
        };
        assert!(matches!(
            short.validate(),
            Err(ServeError::InvalidTopology(_))
        ));
        let portless = TopologySpec {
            rows: 1,
            cols: 1,
            shards: vec![BackendSpec::Http("justahost".into())],
        };
        assert!(matches!(
            portless.validate(),
            Err(ServeError::InvalidTopology(_))
        ));
        // The all-local shorthand: empty shard list, any slot is Local.
        let local = TopologySpec::local(2, 3);
        local.validate().unwrap();
        assert_eq!(local.backend(5), BackendSpec::Local);
    }

    #[test]
    fn partitioned_topology_routes_like_a_router_and_shrinks_heap() {
        let full = index();
        let full_heap = full.heap_bytes();
        let topo = Topology::partitioned(full.clone(), 2, 2).unwrap();
        assert_eq!(topo.shards(), 4);
        assert_eq!(topo.shape(), (2, 2));
        // Same routing semantics as the old router.
        assert_eq!(topo.shard_of(&Point::new(0.25, 0.25)), Some(0));
        assert_eq!(topo.shard_of(&Point::new(0.5, 0.5)), Some(3));
        assert_eq!(topo.shard_of(&Point::new(1.5, 0.5)), None);
        assert_eq!(topo.covering(&Rect::unit()), vec![0, 1, 2, 3]);
        // Every backend is a clipped local shard whose answers match the
        // single box on the points routed to it.
        for shard in topo.backends() {
            let local = shard.as_local().unwrap();
            assert!(local.handle().load().clip_rect().is_some());
            assert!(local.handle().load().heap_bytes() < full_heap);
        }
        for p in [(0.1, 0.1), (0.9, 0.1), (0.5, 0.5), (1.0, 1.0), (0.0, 0.9)] {
            let p = Point::new(p.0, p.1);
            let shard = topo.shard_of(&p).unwrap();
            let got = topo.backends()[shard]
                .as_local()
                .unwrap()
                .handle()
                .load()
                .lookup(&p)
                .expect("guard band covers every routed point");
            assert_eq!(got, full.lookup(&p).unwrap());
        }
    }

    #[test]
    fn local_dispatch_speaks_the_protocol() {
        let shard = LocalShard::new(IndexHandle::new(index()));
        match shard.dispatch(&Request::Lookup { x: 0.1, y: 0.1 }) {
            Response::Decision { decision } => assert_eq!(decision.leaf_id, 0),
            other => panic!("expected decision, got {other:?}"),
        }
        match shard.dispatch(&Request::Lookup { x: 5.0, y: 0.1 }) {
            Response::Error { error } => assert_eq!(error.code, ErrorCode::OutOfBounds),
            other => panic!("expected error, got {other:?}"),
        }
        match shard.dispatch(&Request::Stats) {
            Response::Stats { stats } => {
                assert_eq!(stats.shards, 1);
                assert_eq!(stats.generations, vec![1]);
            }
            other => panic!("expected stats, got {other:?}"),
        }
        assert_eq!(
            shard.descriptor(),
            ShardDescriptor {
                kind: "local",
                addr: None
            }
        );
        // Commit without a prepare is a structured protocol error.
        match shard.dispatch(&Request::RebuildCommit) {
            Response::Error { error } => assert_eq!(error.code, ErrorCode::NotPrepared),
            other => panic!("expected error, got {other:?}"),
        }
    }

    #[test]
    fn stage_then_commit_swaps_atomically_per_shard() {
        let shard = LocalShard::new(IndexHandle::new(index()));
        let grid = Grid::unit(8).unwrap();
        let partition = Partition::uniform(&grid, 2, 2).unwrap();
        let snapshot = ModelSnapshot::uniform(4, 0.9).unwrap();
        let next = FrozenIndex::from_partition(&partition, &grid, &snapshot).unwrap();
        shard.stage(&next).unwrap();
        // Staged but not committed: still serving generation 1.
        assert_eq!(shard.generation(), 1);
        let p = Point::new(0.1, 0.1);
        assert!((shard.handle().load().lookup(&p).unwrap().raw_score - 0.2).abs() < 1e-12);
        assert_eq!(shard.commit().unwrap(), 2);
        assert!((shard.handle().load().lookup(&p).unwrap().raw_score - 0.9).abs() < 1e-12);
        assert!(matches!(shard.commit(), Err(ServeError::NotStaged)));
        // Abort drops the staged index.
        shard.stage(&next).unwrap();
        shard.abort();
        assert!(matches!(shard.commit(), Err(ServeError::NotStaged)));
    }

    #[test]
    fn publish_reclips_partial_shards() {
        let topo = Topology::partitioned(index(), 2, 2).unwrap();
        let grid = Grid::unit(8).unwrap();
        let partition = Partition::uniform(&grid, 2, 2).unwrap();
        let snapshot = ModelSnapshot::uniform(4, 0.9).unwrap();
        let next = FrozenIndex::from_partition(&partition, &grid, &snapshot).unwrap();
        let full_heap = next.heap_bytes();
        assert_eq!(topo.publish(next).unwrap(), 2);
        assert_eq!(topo.generations(), vec![2, 2, 2, 2]);
        for b in topo.backends() {
            let served = b.as_local().unwrap().handle().load();
            assert!(
                served.clip_rect().is_some(),
                "publish must keep shards partial"
            );
            assert!(served.heap_bytes() < full_heap);
        }
    }

    #[test]
    fn router_migration_shim_preserves_replica_semantics() {
        #[allow(deprecated)]
        let router = ShardRouter::new(index(), 2, 2).unwrap();
        let topo: Topology = router.into();
        assert_eq!(topo.shards(), 4);
        // Replica shards are unclipped and answer for the whole map.
        for b in topo.backends() {
            let local = b.as_local().unwrap();
            assert!(local.handle().load().clip_rect().is_none());
            assert!(local
                .handle()
                .load()
                .lookup(&Point::new(0.95, 0.95))
                .is_some());
        }
    }

    #[test]
    fn partial_builds_a_single_shard_server_topology() {
        let full = index();
        let topo = Topology::partial(&full, 2, 2, 3).unwrap();
        assert_eq!(topo.shards(), 1);
        let local = topo.backends()[0].as_local().unwrap();
        // Serves its own quadrant, rejects the opposite corner.
        assert!(local
            .handle()
            .load()
            .lookup(&Point::new(0.9, 0.9))
            .is_some());
        assert!(local
            .handle()
            .load()
            .lookup(&Point::new(0.1, 0.1))
            .is_none());
        assert!(matches!(
            Topology::partial(&full, 2, 2, 4),
            Err(ServeError::InvalidTopology(_))
        ));
    }

    #[test]
    fn from_spec_dials_remote_slots_through_the_connector() {
        let spec = TopologySpec {
            rows: 1,
            cols: 2,
            shards: vec![
                BackendSpec::Local,
                BackendSpec::Http("10.0.0.7:7878".into()),
            ],
        };
        // A stand-in connector: remote slots become unclipped locals so
        // the wiring is observable without a socket.
        let stub = index();
        let topo = Topology::from_spec(&spec, index(), |addr: &str| {
            assert_eq!(addr, "10.0.0.7:7878");
            Ok(Box::new(LocalShard::new(IndexHandle::new(stub.clone()))) as Box<dyn ShardBackend>)
        })
        .unwrap();
        assert_eq!(topo.shards(), 2);
        assert!(topo.backends()[0]
            .as_local()
            .unwrap()
            .handle()
            .load()
            .clip_rect()
            .is_some());
        assert!(topo.backends()[1]
            .as_local()
            .unwrap()
            .handle()
            .load()
            .clip_rect()
            .is_none());
        // Connector failures surface as construction errors.
        let err = Topology::from_spec(&spec, index(), |_: &str| {
            Err(ServeError::Remote {
                addr: "10.0.0.7:7878".into(),
                detail: "connection refused".into(),
            })
        });
        assert!(matches!(err, Err(ServeError::Remote { .. })));
    }
}
