//! Background rebuilds: re-run the training pipeline and hot-swap the
//! result into a live [`IndexHandle`] without pausing readers.

use crate::error::ServeError;
use crate::frozen::FrozenIndex;
use crate::handle::IndexHandle;
use fsi_data::SpatialDataset;
use fsi_pipeline::{run_spec, MethodRun, ModelSnapshot, PipelineSpec};
use std::thread::JoinHandle;
use std::time::Instant;

/// Builds a [`FrozenIndex`] from scratch for one [`PipelineSpec`]: runs
/// the full training pipeline, extracts the model snapshot, and compiles
/// the index. Returns the index together with the pipeline run (for its
/// evaluation report).
pub fn build_index(
    dataset: &SpatialDataset,
    spec: &PipelineSpec,
) -> Result<(FrozenIndex, MethodRun), ServeError> {
    let run = run_spec(dataset, spec)?;
    let index = compile_run(&run, dataset)?;
    Ok((index, run))
}

/// Compiles an already finished pipeline run into a [`FrozenIndex`].
///
/// Tree-backed methods (`MedianKd`, `FairKd`, `IterativeFairKd`)
/// compile their KD-tree into the flat branchless backend; the other
/// methods fall back to the per-cell partition backend
/// ([`FrozenIndex::from_partition`]), which the differential tests prove
/// lookup-equivalent wherever both exist.
pub fn compile_run(run: &MethodRun, dataset: &SpatialDataset) -> Result<FrozenIndex, ServeError> {
    let snapshot: ModelSnapshot = run.model_snapshot()?;
    match run.tree.as_ref() {
        Some(tree) => FrozenIndex::compile(tree, dataset.grid(), &snapshot),
        None => FrozenIndex::from_partition(&run.partition, dataset.grid(), &snapshot),
    }
}

/// What a finished rebuild did.
///
/// Lives in `fsi-proto` (as the body of a `Rebuild` response) and is
/// re-exported here, so the wire protocol and the library rebuild APIs
/// share one serializable representation.
pub use fsi_proto::RebuildReport;

/// Rebuilds indexes against a live [`IndexHandle`].
///
/// A rebuild runs the whole `fsi-pipeline` trainer — seconds of work —
/// while readers keep serving the old snapshot; the swap at the end is
/// two pointer writes. Clone the rebuilder (or use
/// [`Rebuilder::spawn_rebuild`]) to run it from a background thread.
#[derive(Clone)]
pub struct Rebuilder {
    handle: IndexHandle,
}

impl Rebuilder {
    /// Creates a rebuilder publishing into `handle`.
    pub fn new(handle: IndexHandle) -> Self {
        Self { handle }
    }

    /// The handle this rebuilder publishes into.
    pub fn handle(&self) -> &IndexHandle {
        &self.handle
    }

    /// Trains, compiles and publishes a new index, returning what
    /// happened. Readers never block; they observe the new snapshot on
    /// their next [`crate::IndexReader::snapshot`] call.
    pub fn rebuild(
        &self,
        dataset: &SpatialDataset,
        spec: &PipelineSpec,
    ) -> Result<RebuildReport, ServeError> {
        let started = Instant::now();
        let (index, run) = build_index(dataset, spec)?;
        let num_leaves = index.num_leaves();
        // publish() returns the generation computed under its lock, so
        // concurrent rebuilds each report their own publish correctly.
        let (generation, _old) = self.handle.publish(index);
        Ok(RebuildReport {
            spec: spec.clone(),
            generation,
            num_leaves,
            ence: run.eval.full.ence,
            build_time: run.build_time,
            total_time: started.elapsed(),
        })
    }

    /// Runs [`Rebuilder::rebuild`] on a background `std::thread`,
    /// returning its join handle. The dataset is moved into the thread;
    /// clone it at the call site if you still need it.
    pub fn spawn_rebuild(
        &self,
        dataset: SpatialDataset,
        spec: PipelineSpec,
    ) -> JoinHandle<Result<RebuildReport, ServeError>> {
        let rebuilder = self.clone();
        std::thread::spawn(move || rebuilder.rebuild(&dataset, &spec))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fsi_data::synth::city::{CityConfig, CityGenerator};
    use fsi_geo::Point;
    use fsi_pipeline::{Method, TaskSpec};

    fn small_dataset() -> SpatialDataset {
        CityGenerator::new(CityConfig {
            n_individuals: 250,
            grid_side: 16,
            seed: 11,
            ..CityConfig::default()
        })
        .unwrap()
        .generate()
        .unwrap()
    }

    fn spec(method: Method, height: usize) -> PipelineSpec {
        PipelineSpec::new(TaskSpec::act(), method, height)
    }

    #[test]
    fn build_index_serves_the_run_partition() {
        let d = small_dataset();
        let (index, run) = build_index(&d, &spec(Method::MedianKd, 3)).unwrap();
        assert_eq!(index.num_leaves(), run.partition.num_regions());
        for (i, p) in d.locations().iter().enumerate().take(50) {
            let expected = run.partition.region_of(d.cells()[i]);
            assert_eq!(index.lookup(p).unwrap().leaf_id, expected);
        }
    }

    #[test]
    fn non_tree_methods_fall_back_to_the_cells_backend() {
        let d = small_dataset();
        let (index, run) = build_index(&d, &spec(Method::ZipCode, 3)).unwrap();
        assert_eq!(index.backend_name(), "cells");
        assert_eq!(index.num_leaves(), run.partition.num_regions());
        for (i, p) in d.locations().iter().enumerate().take(50) {
            let expected = run.partition.region_of(d.cells()[i]);
            assert_eq!(index.lookup(p).unwrap().leaf_id, expected);
        }
        // Tree-backed methods still get the flat tree backend.
        let (index, _) = build_index(&d, &spec(Method::MedianKd, 3)).unwrap();
        assert_eq!(index.backend_name(), "tree");
    }

    #[test]
    fn rebuild_publishes_a_new_generation() {
        let d = small_dataset();
        let (initial, _) = build_index(&d, &spec(Method::MedianKd, 2)).unwrap();
        let handle = IndexHandle::new(initial);
        let mut reader = handle.reader();
        assert_eq!(reader.snapshot().num_leaves(), 4);

        let rebuilder = Rebuilder::new(handle.clone());
        let fair = spec(Method::FairKd, 4);
        let report = rebuilder.rebuild(&d, &fair).unwrap();
        assert_eq!(report.generation, 2);
        assert_eq!(report.num_leaves, 16);
        assert_eq!(report.spec, fair);
        assert!(report.total_time >= report.build_time);
        // The reader sees the fair index on its next snapshot call.
        assert_eq!(reader.snapshot().num_leaves(), 16);
        assert!(reader.snapshot().lookup(&Point::new(0.5, 0.5)).is_some());
    }

    #[test]
    fn spawned_rebuild_joins_with_report() {
        let d = small_dataset();
        let (initial, _) = build_index(&d, &spec(Method::MedianKd, 2)).unwrap();
        let handle = IndexHandle::new(initial);
        let rebuilder = Rebuilder::new(handle.clone());
        let join = rebuilder.spawn_rebuild(d, spec(Method::MedianKd, 3));
        let report = join.join().expect("rebuild thread panicked").unwrap();
        assert_eq!(report.generation, 2);
        assert_eq!(handle.load().num_leaves(), report.num_leaves);
    }
}
