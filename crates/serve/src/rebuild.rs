//! Background rebuilds: re-run the training pipeline and hot-swap the
//! result into a live [`IndexHandle`] without pausing readers.

use crate::error::ServeError;
use crate::frozen::FrozenIndex;
use crate::handle::IndexHandle;
use fsi_data::SpatialDataset;
use fsi_pipeline::{run_method, MethodRun, RunConfig, TaskSpec};
use fsi_pipeline::{Method, ModelSnapshot};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Builds a [`FrozenIndex`] from scratch for `(dataset, task, method,
/// height)`: runs the full training pipeline, extracts the model
/// snapshot, and compiles the KD-tree. Returns the index together with
/// the pipeline run (for its evaluation report).
///
/// Only the tree-backed methods (`MedianKd`, `FairKd`,
/// `IterativeFairKd`) can be compiled; the others return
/// [`ServeError::NotTreeBacked`].
pub fn build_index(
    dataset: &SpatialDataset,
    task: &TaskSpec,
    method: Method,
    height: usize,
    config: &RunConfig,
) -> Result<(FrozenIndex, MethodRun), ServeError> {
    let run = run_method(dataset, task, method, height, config)?;
    let index = compile_run(&run, dataset)?;
    Ok((index, run))
}

/// Compiles an already finished pipeline run into a [`FrozenIndex`].
pub fn compile_run(run: &MethodRun, dataset: &SpatialDataset) -> Result<FrozenIndex, ServeError> {
    let tree = run.tree.as_ref().ok_or(ServeError::NotTreeBacked {
        method: run.method.name(),
    })?;
    let snapshot: ModelSnapshot = run.model_snapshot()?;
    FrozenIndex::compile(tree, dataset.grid(), &snapshot)
}

/// What a finished rebuild did.
#[derive(Debug, Clone)]
pub struct RebuildReport {
    /// The method the new index was built with.
    pub method: Method,
    /// Requested tree height.
    pub height: usize,
    /// Generation the new snapshot serves at.
    pub generation: u64,
    /// Leaves in the new index.
    pub num_leaves: usize,
    /// ENCE of the retrained model over the full population.
    pub ence: f64,
    /// Wall-clock of partition construction inside the pipeline.
    pub build_time: Duration,
    /// End-to-end wall-clock: training + evaluation + compile + publish.
    pub total_time: Duration,
}

/// Rebuilds indexes against a live [`IndexHandle`].
///
/// A rebuild runs the whole `fsi-pipeline` trainer — seconds of work —
/// while readers keep serving the old snapshot; the swap at the end is
/// two pointer writes. Clone the rebuilder (or use
/// [`Rebuilder::spawn_rebuild`]) to run it from a background thread.
#[derive(Clone)]
pub struct Rebuilder {
    handle: IndexHandle,
}

impl Rebuilder {
    /// Creates a rebuilder publishing into `handle`.
    pub fn new(handle: IndexHandle) -> Self {
        Self { handle }
    }

    /// The handle this rebuilder publishes into.
    pub fn handle(&self) -> &IndexHandle {
        &self.handle
    }

    /// Trains, compiles and publishes a new index, returning what
    /// happened. Readers never block; they observe the new snapshot on
    /// their next [`crate::IndexReader::snapshot`] call.
    pub fn rebuild(
        &self,
        dataset: &SpatialDataset,
        task: &TaskSpec,
        method: Method,
        height: usize,
        config: &RunConfig,
    ) -> Result<RebuildReport, ServeError> {
        let started = Instant::now();
        let (index, run) = build_index(dataset, task, method, height, config)?;
        let num_leaves = index.num_leaves();
        // publish() returns the generation computed under its lock, so
        // concurrent rebuilds each report their own publish correctly.
        let (generation, _old) = self.handle.publish(index);
        Ok(RebuildReport {
            method,
            height,
            generation,
            num_leaves,
            ence: run.eval.full.ence,
            build_time: run.build_time,
            total_time: started.elapsed(),
        })
    }

    /// Runs [`Rebuilder::rebuild`] on a background `std::thread`,
    /// returning its join handle. The dataset is moved into the thread;
    /// clone it at the call site if you still need it.
    pub fn spawn_rebuild(
        &self,
        dataset: SpatialDataset,
        task: TaskSpec,
        method: Method,
        height: usize,
        config: RunConfig,
    ) -> JoinHandle<Result<RebuildReport, ServeError>> {
        let rebuilder = self.clone();
        std::thread::spawn(move || rebuilder.rebuild(&dataset, &task, method, height, &config))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fsi_data::synth::city::{CityConfig, CityGenerator};
    use fsi_geo::Point;

    fn small_dataset() -> SpatialDataset {
        CityGenerator::new(CityConfig {
            n_individuals: 250,
            grid_side: 16,
            seed: 11,
            ..CityConfig::default()
        })
        .unwrap()
        .generate()
        .unwrap()
    }

    #[test]
    fn build_index_serves_the_run_partition() {
        let d = small_dataset();
        let (index, run) = build_index(
            &d,
            &TaskSpec::act(),
            Method::MedianKd,
            3,
            &RunConfig::default(),
        )
        .unwrap();
        assert_eq!(index.num_leaves(), run.partition.num_regions());
        for (i, p) in d.locations().iter().enumerate().take(50) {
            let expected = run.partition.region_of(d.cells()[i]);
            assert_eq!(index.lookup(p).unwrap().leaf_id, expected);
        }
    }

    #[test]
    fn non_tree_methods_are_rejected() {
        let d = small_dataset();
        let err = build_index(
            &d,
            &TaskSpec::act(),
            Method::ZipCode,
            3,
            &RunConfig::default(),
        )
        .unwrap_err();
        assert!(matches!(err, ServeError::NotTreeBacked { .. }));
    }

    #[test]
    fn rebuild_publishes_a_new_generation() {
        let d = small_dataset();
        let cfg = RunConfig::default();
        let task = TaskSpec::act();
        let (initial, _) = build_index(&d, &task, Method::MedianKd, 2, &cfg).unwrap();
        let handle = IndexHandle::new(initial);
        let mut reader = handle.reader();
        assert_eq!(reader.snapshot().num_leaves(), 4);

        let rebuilder = Rebuilder::new(handle.clone());
        let report = rebuilder
            .rebuild(&d, &task, Method::FairKd, 4, &cfg)
            .unwrap();
        assert_eq!(report.generation, 2);
        assert_eq!(report.num_leaves, 16);
        assert!(report.total_time >= report.build_time);
        // The reader sees the fair index on its next snapshot call.
        assert_eq!(reader.snapshot().num_leaves(), 16);
        assert!(reader.snapshot().lookup(&Point::new(0.5, 0.5)).is_some());
    }

    #[test]
    fn spawned_rebuild_joins_with_report() {
        let d = small_dataset();
        let cfg = RunConfig::default();
        let task = TaskSpec::act();
        let (initial, _) = build_index(&d, &task, Method::MedianKd, 2, &cfg).unwrap();
        let handle = IndexHandle::new(initial);
        let rebuilder = Rebuilder::new(handle.clone());
        let join = rebuilder.spawn_rebuild(d, task, Method::MedianKd, 3, cfg);
        let report = join.join().expect("rebuild thread panicked").unwrap();
        assert_eq!(report.generation, 2);
        assert_eq!(handle.load().num_leaves(), report.num_leaves);
    }
}
