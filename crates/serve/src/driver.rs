//! Multi-threaded throughput driver: saturate an [`IndexHandle`] with
//! point lookups from `std::thread` workers and report aggregate rates.
//!
//! This is both the measurement harness behind the `serving` benchmark
//! suite and a miniature model of a real serving deployment: every worker
//! owns an [`crate::IndexReader`], so a concurrent rebuild hot-swaps
//! under the sweep without stopping it.

use crate::handle::IndexHandle;
use fsi_geo::Point;
use serde::{Deserialize, Serialize};
use std::time::{Duration, Instant};

/// Aggregate result of one throughput sweep.
///
/// Serializable, so bench artifacts and any transport that reports
/// sweep results share the same JSON representation as the rest of the
/// serving protocol (`Duration`s as `{secs, nanos}` objects).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ThroughputReport {
    /// Worker threads used.
    pub threads: usize,
    /// Total lookups attempted (in-bounds and out).
    pub lookups: usize,
    /// Points that fell outside the index bounds.
    pub out_of_bounds: usize,
    /// Wall-clock of the whole sweep.
    pub elapsed: Duration,
    /// `lookups / elapsed`, in points per second.
    pub lookups_per_sec: f64,
    /// Sum of served leaf ids — keeps the work observable so the
    /// optimizer cannot discard the lookups, and doubles as a cheap
    /// cross-run determinism check.
    pub checksum: u64,
}

/// Sweeps `passes` rounds of `points` through the live index using
/// `threads` workers (clamped to at least 1).
///
/// Points are split into contiguous per-worker chunks; each worker
/// refreshes its [`crate::IndexReader`] snapshot once per pass, which is
/// how a long-lived server would batch its generation checks.
pub fn sweep(
    handle: &IndexHandle,
    points: &[Point],
    threads: usize,
    passes: usize,
) -> ThroughputReport {
    let requested = threads.max(1).min(points.len().max(1));
    let chunk = points.len().div_ceil(requested).max(1);
    // Ceil division can need fewer workers than requested; report reality.
    let threads = points.len().div_ceil(chunk).max(1);
    let started = Instant::now();
    let (checksum, out_of_bounds) = std::thread::scope(|scope| {
        let mut workers = Vec::with_capacity(threads);
        for slice in points.chunks(chunk) {
            let mut reader = handle.reader();
            workers.push(scope.spawn(move || {
                let mut sum = 0u64;
                let mut oob = 0usize;
                for _ in 0..passes {
                    let index = reader.snapshot();
                    for p in slice {
                        match index.lookup(p) {
                            Some(d) => sum = sum.wrapping_add(d.leaf_id as u64),
                            None => oob += 1,
                        }
                    }
                }
                (sum, oob)
            }));
        }
        workers
            .into_iter()
            .map(|w| w.join().expect("throughput worker panicked"))
            .fold((0u64, 0usize), |(s, o), (ws, wo)| {
                (s.wrapping_add(ws), o + wo)
            })
    });
    let elapsed = started.elapsed();
    let lookups = points.len() * passes;
    ThroughputReport {
        threads,
        lookups,
        out_of_bounds,
        elapsed,
        lookups_per_sec: lookups as f64 / elapsed.as_secs_f64().max(f64::MIN_POSITIVE),
        checksum,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frozen::FrozenIndex;
    use fsi_geo::{Grid, Partition};
    use fsi_pipeline::ModelSnapshot;

    fn handle() -> IndexHandle {
        let grid = Grid::unit(8).unwrap();
        let partition = Partition::uniform(&grid, 4, 4).unwrap();
        let snapshot = ModelSnapshot::uniform(16, 0.5).unwrap();
        IndexHandle::new(FrozenIndex::from_partition(&partition, &grid, &snapshot).unwrap())
    }

    fn grid_points(n: usize) -> Vec<Point> {
        (0..n)
            .map(|i| Point::new((i % 97) as f64 / 97.0, ((i * 31) % 89) as f64 / 89.0))
            .collect()
    }

    #[test]
    fn sweep_counts_every_lookup() {
        let h = handle();
        let points = grid_points(1000);
        let r = sweep(&h, &points, 4, 3);
        assert_eq!(r.lookups, 3000);
        assert_eq!(r.out_of_bounds, 0);
        assert!(r.lookups_per_sec > 0.0);
        assert_eq!(r.threads, 4);
    }

    #[test]
    fn checksum_is_thread_count_invariant() {
        let h = handle();
        let points = grid_points(512);
        let a = sweep(&h, &points, 1, 2);
        let b = sweep(&h, &points, 4, 2);
        assert_eq!(a.checksum, b.checksum);
    }

    #[test]
    fn out_of_bounds_points_are_counted_not_fatal() {
        let h = handle();
        let mut points = grid_points(100);
        points.push(Point::new(7.0, 7.0));
        let r = sweep(&h, &points, 2, 1);
        assert_eq!(r.out_of_bounds, 1);
        assert_eq!(r.lookups, 101);
    }

    #[test]
    fn report_round_trips_through_json() {
        let h = handle();
        let points = grid_points(100);
        let r = sweep(&h, &points, 2, 1);
        let json = serde_json::to_string(&r).unwrap();
        let back: ThroughputReport = serde_json::from_str(&json).unwrap();
        assert_eq!(r, back);
        assert!(json.contains("\"lookups_per_sec\""));
        assert!(json.contains("\"secs\""), "Duration as {{secs, nanos}}");
    }

    #[test]
    fn degenerate_thread_counts_clamp() {
        let h = handle();
        let points = grid_points(10);
        let r = sweep(&h, &points, 0, 1);
        assert_eq!(r.threads, 1);
        // More threads than points also works.
        let r = sweep(&h, &points, 64, 1);
        assert_eq!(r.lookups, 10);
    }
}
