//! Spatial shard routing: partition the served bounding rectangle into
//! a `rows × cols` grid of shards, each backed by its own hot-swappable
//! [`IndexHandle`].
//!
//! **Superseded by [`crate::Topology`]**: the router only knows
//! in-process replicas, while a topology mixes local partial indexes
//! and remote shards behind the [`crate::ShardBackend`] trait. The
//! constructors here are deprecated shims; `ShardRouter` converts into
//! a `Topology` of unclipped local shards via `From`, preserving the
//! replica semantics bit for bit.
//!
//! On one machine every shard serves a replica of the same compiled
//! index, so routing is a load-distribution (and, later, a
//! multi-machine placement) concern, never a correctness one: a
//! [`crate::QueryService`] in front of a router answers bit-identically
//! to a single [`crate::FrozenIndex`] — the differential transport
//! tests assert exactly that. Point lookups route to exactly one shard;
//! range queries fan out to every shard whose sub-rectangle intersects
//! the query and merge the results.

use crate::error::ServeError;
use crate::frozen::FrozenIndex;
use crate::handle::IndexHandle;
use fsi_geo::{Point, Rect};

/// A spatial partition of the served bounding rectangle over a set of
/// [`IndexHandle`] shards.
///
/// Cheap to share: the router itself is immutable after construction
/// (the *handles* hot-swap internally), so transports keep it behind an
/// `Arc` and hammer it from as many threads as they like.
pub struct ShardRouter {
    bounds: Rect,
    rows: usize,
    cols: usize,
    /// Cached `cols / width` and `rows / height`, so the routing hot
    /// path multiplies instead of dividing.
    inv_w: f64,
    inv_h: f64,
    handles: Vec<IndexHandle>,
}

impl ShardRouter {
    /// A 1×1 router over an existing handle — the common single-shard
    /// deployment, sharing hot-swaps with every other user of `handle`.
    #[deprecated(
        since = "0.7.0",
        note = "use `Topology::single(handle)`; `QueryService::new` accepts it directly"
    )]
    pub fn single(handle: IndexHandle) -> Self {
        let bounds = *handle.load().bounds();
        Self {
            bounds,
            rows: 1,
            cols: 1,
            inv_w: 1.0 / bounds.width(),
            inv_h: 1.0 / bounds.height(),
            handles: vec![handle],
        }
    }

    /// Builds a `rows × cols` router where every shard starts from a
    /// replica of `index`. Rejects degenerate shard grids.
    #[deprecated(
        since = "0.7.0",
        note = "use `Topology::partitioned(index, rows, cols)` for partial-index shards \
                (or `Topology::replicated` for the old full-replica semantics)"
    )]
    pub fn new(index: FrozenIndex, rows: usize, cols: usize) -> Result<Self, ServeError> {
        if rows == 0 || cols == 0 {
            return Err(ServeError::InvalidShards { rows, cols });
        }
        let bounds = *index.bounds();
        let mut handles = Vec::with_capacity(rows * cols);
        for _ in 0..rows * cols - 1 {
            handles.push(IndexHandle::new(index.clone()));
        }
        handles.push(IndexHandle::new(index));
        Ok(Self {
            bounds,
            rows,
            cols,
            inv_w: cols as f64 / bounds.width(),
            inv_h: rows as f64 / bounds.height(),
            handles,
        })
    }

    /// Number of shards (`rows × cols`).
    pub fn shards(&self) -> usize {
        self.handles.len()
    }

    /// Shard grid shape `(rows, cols)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// The bounding rectangle the shards partition.
    pub fn bounds(&self) -> &Rect {
        &self.bounds
    }

    /// The shard handles, row-major.
    pub fn handles(&self) -> &[IndexHandle] {
        &self.handles
    }

    /// The shard owning `p`, or `None` when the point is non-finite or
    /// outside the bounds. Uses the same closed-bounds floor-and-clamp
    /// semantics as `Grid::cell_of`, so every in-bounds point routes to
    /// exactly one shard.
    pub fn shard_of(&self, p: &Point) -> Option<usize> {
        if !p.is_finite() || !self.bounds.contains(p) {
            return None;
        }
        let fx = (p.x - self.bounds.min_x) * self.inv_w;
        let fy = (p.y - self.bounds.min_y) * self.inv_h;
        let col = (fx as usize).min(self.cols - 1);
        let row = (fy as usize).min(self.rows - 1);
        Some(row * self.cols + col)
    }

    /// Every shard whose sub-rectangle intersects the closed `query`,
    /// ascending; empty when the query is non-finite or misses the
    /// bounds entirely.
    pub fn covering(&self, query: &Rect) -> Vec<usize> {
        let finite = [query.min_x, query.min_y, query.max_x, query.max_y]
            .iter()
            .all(|v| v.is_finite());
        if !finite {
            return Vec::new();
        }
        let b = &self.bounds;
        let lo = Point::new(query.min_x.max(b.min_x), query.min_y.max(b.min_y));
        let hi = Point::new(query.max_x.min(b.max_x), query.max_y.min(b.max_y));
        if lo.x > hi.x || lo.y > hi.y {
            return Vec::new();
        }
        let (lo, hi) = match (self.shard_of(&lo), self.shard_of(&hi)) {
            (Some(lo), Some(hi)) => (lo, hi),
            _ => return Vec::new(),
        };
        let (row_lo, col_lo) = (lo / self.cols, lo % self.cols);
        let (row_hi, col_hi) = (hi / self.cols, hi % self.cols);
        let mut out = Vec::with_capacity((row_hi - row_lo + 1) * (col_hi - col_lo + 1));
        for row in row_lo..=row_hi {
            for col in col_lo..=col_hi {
                out.push(row * self.cols + col);
            }
        }
        out
    }

    /// Publishes a replica of `index` to every shard and returns the
    /// highest resulting generation. Shards are published in order, so
    /// a concurrent reader may briefly observe mixed generations across
    /// shards — but each *individual* shard's generation only ever
    /// rises.
    pub fn publish(&self, index: FrozenIndex) -> u64 {
        let mut newest = 0;
        let last = self.handles.len() - 1;
        for handle in &self.handles[..last] {
            let (generation, _old) = handle.publish(index.clone());
            newest = newest.max(generation);
        }
        // The last shard takes ownership instead of cloning.
        let (generation, _old) = self.handles[last].publish(index);
        newest.max(generation)
    }

    /// Per-shard snapshot generations, in shard order.
    pub fn generations(&self) -> Vec<u64> {
        self.handles.iter().map(IndexHandle::generation).collect()
    }
}

#[cfg(test)]
mod tests {
    #![allow(deprecated)]

    use super::*;
    use fsi_geo::{Grid, Partition};
    use fsi_pipeline::ModelSnapshot;

    fn index(raw: f64) -> FrozenIndex {
        let grid = Grid::unit(8).unwrap();
        let partition = Partition::uniform(&grid, 2, 2).unwrap();
        let snapshot = ModelSnapshot::uniform(4, raw).unwrap();
        FrozenIndex::from_partition(&partition, &grid, &snapshot).unwrap()
    }

    #[test]
    fn construction_validates_the_shard_grid() {
        assert!(matches!(
            ShardRouter::new(index(0.5), 0, 3),
            Err(ServeError::InvalidShards { .. })
        ));
        assert!(matches!(
            ShardRouter::new(index(0.5), 2, 0),
            Err(ServeError::InvalidShards { .. })
        ));
        let r = ShardRouter::new(index(0.5), 2, 3).unwrap();
        assert_eq!(r.shards(), 6);
        assert_eq!(r.shape(), (2, 3));
    }

    #[test]
    fn every_in_bounds_point_routes_to_exactly_one_shard() {
        let r = ShardRouter::new(index(0.5), 2, 2).unwrap();
        // Quadrant interiors.
        assert_eq!(r.shard_of(&Point::new(0.25, 0.25)), Some(0));
        assert_eq!(r.shard_of(&Point::new(0.75, 0.25)), Some(1));
        assert_eq!(r.shard_of(&Point::new(0.25, 0.75)), Some(2));
        assert_eq!(r.shard_of(&Point::new(0.75, 0.75)), Some(3));
        // Boundaries follow floor semantics; max edges clamp inward.
        assert_eq!(r.shard_of(&Point::new(0.5, 0.5)), Some(3));
        assert_eq!(r.shard_of(&Point::new(1.0, 1.0)), Some(3));
        assert_eq!(r.shard_of(&Point::new(0.0, 0.0)), Some(0));
        // Outside / non-finite.
        assert_eq!(r.shard_of(&Point::new(1.5, 0.5)), None);
        assert_eq!(r.shard_of(&Point::new(f64::NAN, 0.5)), None);
    }

    #[test]
    fn covering_fans_out_to_intersected_shards_only() {
        let r = ShardRouter::new(index(0.5), 2, 2).unwrap();
        assert_eq!(r.covering(&Rect::unit()), vec![0, 1, 2, 3]);
        let sw = Rect::new(0.1, 0.1, 0.4, 0.4).unwrap();
        assert_eq!(r.covering(&sw), vec![0]);
        let bottom = Rect::new(0.1, 0.1, 0.9, 0.4).unwrap();
        assert_eq!(r.covering(&bottom), vec![0, 1]);
        // Queries poking past the bounds clamp; disjoint ones vanish.
        let spill = Rect::new(0.6, 0.6, 9.0, 9.0).unwrap();
        assert_eq!(r.covering(&spill), vec![3]);
        assert!(r
            .covering(&Rect::new(2.0, 2.0, 3.0, 3.0).unwrap())
            .is_empty());
    }

    #[test]
    fn publish_raises_every_shard_generation() {
        let r = ShardRouter::new(index(0.25), 2, 2).unwrap();
        assert_eq!(r.generations(), vec![1, 1, 1, 1]);
        let newest = r.publish(index(0.75));
        assert_eq!(newest, 2);
        assert_eq!(r.generations(), vec![2, 2, 2, 2]);
        for h in r.handles() {
            let d = h.load().lookup(&Point::new(0.1, 0.1)).unwrap();
            assert!((d.raw_score - 0.75).abs() < 1e-12);
        }
    }

    #[test]
    fn single_router_shares_the_callers_handle() {
        let handle = IndexHandle::new(index(0.25));
        let r = ShardRouter::single(handle.clone());
        assert_eq!(r.shards(), 1);
        handle.publish(index(0.9));
        assert_eq!(r.generations(), vec![2]);
    }
}
