//! Atomic snapshot hot-swap: publish a freshly built index without ever
//! blocking readers mid-query.
//!
//! The design is an std-only read-copy-update: the live index is an
//! `Arc<FrozenIndex>` snapshot, and every published snapshot carries a
//! monotonically increasing generation number.
//!
//! * **Readers** ([`IndexReader`]) keep their own `Arc` clone and serve
//!   queries from it without any synchronization at all. Detecting a new
//!   snapshot is a single atomic generation load per
//!   [`IndexReader::snapshot`] call; only when the generation actually
//!   changed (i.e. once per rebuild, not per query) does the reader touch
//!   the publish mutex to fetch the new `Arc`.
//! * **Writers** ([`IndexHandle::publish`]) build the replacement index
//!   *off to the side* (see [`crate::Rebuilder`]), then swap the `Arc` and
//!   bump the generation under a mutex held for two pointer writes.
//!
//! Because a snapshot is a whole immutable `FrozenIndex` behind an `Arc`,
//! a reader always observes either the complete old index or the complete
//! new one — torn reads are impossible by construction, which the
//! hot-swap integration test hammers on.

use crate::frozen::FrozenIndex;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

struct Shared {
    /// Generation of the snapshot in `current`. Written only while the
    /// `current` mutex is held; read lock-free by readers.
    generation: AtomicU64,
    current: Mutex<Arc<FrozenIndex>>,
}

impl Shared {
    /// Locks `current`, shrugging off poisoning: the state under the lock
    /// is two pointer-sized writes that cannot be left half-done.
    fn lock(&self) -> MutexGuard<'_, Arc<FrozenIndex>> {
        self.current.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

/// Shared handle to the live index: cheap to clone, safe to publish
/// through from any thread.
#[derive(Clone)]
pub struct IndexHandle {
    shared: Arc<Shared>,
}

impl IndexHandle {
    /// Creates a handle serving `index` at generation 1.
    pub fn new(index: FrozenIndex) -> Self {
        Self {
            shared: Arc::new(Shared {
                generation: AtomicU64::new(1),
                current: Mutex::new(Arc::new(index)),
            }),
        }
    }

    /// Atomically replaces the served snapshot, returning the new
    /// generation and the previous snapshot. Readers currently mid-query
    /// keep serving the old snapshot until they next call
    /// [`IndexReader::snapshot`]; nobody blocks.
    ///
    /// The returned generation is the one computed under the publish
    /// lock, so it is correct even when publishes race — reading
    /// [`IndexHandle::generation`] afterwards could observe a later one.
    pub fn publish(&self, index: FrozenIndex) -> (u64, Arc<FrozenIndex>) {
        let fresh = Arc::new(index);
        let mut cur = self.shared.lock();
        let old = std::mem::replace(&mut *cur, fresh);
        // Still under the lock, so generation and snapshot move together.
        let generation = self.shared.generation.fetch_add(1, Ordering::Release) + 1;
        (generation, old)
    }

    /// The current snapshot (one mutex lock + `Arc` clone). For hot
    /// loops, hold an [`IndexReader`] instead.
    pub fn load(&self) -> Arc<FrozenIndex> {
        self.shared.lock().clone()
    }

    /// Generation of the live snapshot (starts at 1, +1 per publish).
    pub fn generation(&self) -> u64 {
        self.shared.generation.load(Ordering::Acquire)
    }

    /// Creates a reader with its own cached snapshot.
    pub fn reader(&self) -> IndexReader {
        // Snapshot and generation must be read under one lock
        // acquisition: pairing them from separate reads could tag an old
        // snapshot with a newer generation, leaving the reader stale
        // until the *next* publish.
        let cur = self.shared.lock();
        let cached = cur.clone();
        let seen = self.shared.generation.load(Ordering::Relaxed);
        IndexReader {
            shared: Arc::clone(&self.shared),
            seen,
            cached,
        }
    }
}

/// A per-thread view of the live index.
///
/// [`IndexReader::snapshot`] is the serving hot path: one atomic load to
/// check the generation, then a plain reference into the cached snapshot.
/// The publish mutex is only touched when a new snapshot was actually
/// installed.
pub struct IndexReader {
    shared: Arc<Shared>,
    seen: u64,
    cached: Arc<FrozenIndex>,
}

impl IndexReader {
    /// The freshest snapshot this reader can see. Refreshes the cache iff
    /// a newer generation has been published.
    #[inline]
    pub fn snapshot(&mut self) -> &FrozenIndex {
        self.snapshot_with_generation().0
    }

    /// The freshest snapshot *and* the generation it serves at, read as
    /// one consistent pair — what a generation-keyed decision cache
    /// needs per lookup. Same cost as [`IndexReader::snapshot`]: one
    /// atomic load unless a swap actually happened.
    #[inline]
    pub fn snapshot_with_generation(&mut self) -> (&FrozenIndex, u64) {
        let live = self.shared.generation.load(Ordering::Acquire);
        if live != self.seen {
            let cur = self.shared.lock();
            self.cached = cur.clone();
            // Re-read under the lock: `cur` may already be newer than
            // `live` if another publish squeezed in between.
            self.seen = self.shared.generation.load(Ordering::Relaxed);
        }
        (&self.cached, self.seen)
    }

    /// Generation of the snapshot this reader currently serves from.
    pub fn generation(&self) -> u64 {
        self.seen
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fsi_geo::{Grid, Partition, Point};
    use fsi_pipeline::ModelSnapshot;

    fn index_with_score(raw: f64) -> FrozenIndex {
        let grid = Grid::unit(4).unwrap();
        let partition = Partition::uniform(&grid, 2, 2).unwrap();
        let snapshot = ModelSnapshot::uniform(4, raw).unwrap();
        FrozenIndex::from_partition(&partition, &grid, &snapshot).unwrap()
    }

    #[test]
    fn publish_bumps_generation_and_returns_old() {
        let handle = IndexHandle::new(index_with_score(0.25));
        assert_eq!(handle.generation(), 1);
        let (generation, old) = handle.publish(index_with_score(0.75));
        assert_eq!(generation, 2);
        assert_eq!(handle.generation(), 2);
        let p = Point::new(0.1, 0.1);
        assert!((old.lookup(&p).unwrap().raw_score - 0.25).abs() < 1e-12);
        assert!((handle.load().lookup(&p).unwrap().raw_score - 0.75).abs() < 1e-12);
    }

    #[test]
    fn reader_refreshes_only_on_new_generation() {
        let handle = IndexHandle::new(index_with_score(0.25));
        let mut reader = handle.reader();
        assert_eq!(reader.generation(), 1);
        let p = Point::new(0.9, 0.9);
        assert!((reader.snapshot().lookup(&p).unwrap().raw_score - 0.25).abs() < 1e-12);
        handle.publish(index_with_score(0.75));
        // The reader observes the swap on its next snapshot() call.
        assert!((reader.snapshot().lookup(&p).unwrap().raw_score - 0.75).abs() < 1e-12);
        assert_eq!(reader.generation(), 2);
    }

    #[test]
    fn clones_share_the_same_live_index() {
        let handle = IndexHandle::new(index_with_score(0.2));
        let other = handle.clone();
        other.publish(index_with_score(0.9));
        assert_eq!(handle.generation(), 2);
        let p = Point::new(0.5, 0.5);
        assert!((handle.load().lookup(&p).unwrap().raw_score - 0.9).abs() < 1e-12);
    }
}
