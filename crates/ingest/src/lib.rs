//! # fsi-ingest — streaming ingestion + drift-triggered maintenance
//!
//! Everything below this crate is batch: full dataset in, full retrain,
//! atomic hot-swap. This crate opens the *online* scenario — a write
//! path that keeps the frozen index honest as points stream in:
//!
//! * [`DeltaBuffer`] — a concurrent, cell-sharded buffer of accepted
//!   points ([`IngestRecord`]s), maintaining live per-cell count /
//!   label / group-count deltas ([`CellDelta`]) on top of the frozen
//!   snapshot's statistics. One mutex shard per write, atomics for
//!   occupancy — the same contention shape as the decision cache's
//!   `ShardedLru`.
//! * [`DriftDetector`] — scores how far the buffered deltas have pushed
//!   any subtree's statistics past the frozen baseline, using the
//!   `CellStats`/summed-area-table machinery (one O(grid) pass, then
//!   O(1) per subtree), against a baseline built by [`baseline_stats`].
//! * [`MaintenanceSpec`] — the policy: drift threshold, occupancy
//!   bound, SLA-style staleness bound. [`MaintenanceSpec::due`] decides
//!   when a background pass should fold the buffer in.
//! * [`merge_dataset`] — the deterministic merge that appends drained
//!   records to the seed dataset in global accept order, so every shard
//!   that retrains from the same `(seed, delta)` pair builds a
//!   bit-identical index.
//!
//! The serving layer (`fsi-serve`) wires these into `Request::Ingest` /
//! `Request::IngestBatch` dispatch, owner-shard routing, and the
//! existing two-phase `RebuildPrepare`/`RebuildCommit` barrier — the
//! generation bump invalidates the decision cache implicitly, so
//! streaming writes compose with every layer above with zero new
//! invalidation protocol.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod buffer;
pub mod drift;
pub mod error;
pub mod merge;
pub mod policy;
pub mod record;

pub use buffer::{CellDelta, DeltaBuffer};
pub use drift::{baseline_stats, DriftDetector, DriftReport};
pub use error::IngestError;
pub use merge::merge_dataset;
pub use policy::{MaintenanceSpec, MaintenanceTrigger};
pub use record::IngestRecord;
