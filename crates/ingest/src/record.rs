//! The one ingested-observation record shared across the subsystem.

use fsi_proto::IngestBody;
use serde::{Deserialize, Serialize};

/// One accepted observation: the wire payload plus the global accept
/// sequence number that fixes its position in every deterministic
/// merge.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct IngestRecord {
    /// Global accept order — merges replay records sorted by this, so
    /// every shard that receives the same delta builds the same
    /// dataset.
    pub seq: u64,
    /// Map-space x coordinate.
    pub x: f64,
    /// Map-space y coordinate.
    pub y: f64,
    /// Opaque cohort tag.
    pub group: u32,
    /// Observed binary outcome for the served task.
    pub label: bool,
}

impl IngestRecord {
    /// The wire form of this record (the sequence number is implicit in
    /// the delta's order).
    pub fn to_wire(&self) -> IngestBody {
        IngestBody::new(self.x, self.y, self.group, self.label)
    }

    /// Rebuilds a record from its wire form and its position in the
    /// delta.
    pub fn from_wire(seq: u64, body: &IngestBody) -> Self {
        Self {
            seq,
            x: body.x,
            y: body.y,
            group: body.group,
            label: body.label,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_round_trip_preserves_every_field() {
        let r = IngestRecord {
            seq: 42,
            x: 0.31,
            y: 0.72,
            group: 9,
            label: true,
        };
        let back = IngestRecord::from_wire(42, &r.to_wire());
        assert_eq!(r, back);
    }
}
