//! Deterministic merge of buffered records into a training dataset.
//!
//! Every shard in a topology retrains from its own dataset copy during
//! a two-phase rebuild, and tree splits are global — so the merged
//! dataset must be a pure function of `(seed, task, records)` with a
//! fixed row order. [`merge_dataset`] appends one row per record in
//! global accept (`seq`) order:
//!
//! * **location** — the ingested coordinates (which drive every split
//!   decision);
//! * **features** — the seed dataset's per-column means (the stream
//!   carries no feature vector; the neutral row keeps the classifier's
//!   feature distribution centered);
//! * **task outcome** — the task threshold ± 1.0 by the observed label,
//!   so `threshold_labels` recovers exactly the ingested labels;
//! * **other outcomes** — their seed column means.

use crate::error::IngestError;
use crate::record::IngestRecord;
use fsi_data::SpatialDataset;
use fsi_geo::Point;
use fsi_ml::Matrix;
use fsi_pipeline::TaskSpec;

/// Offset applied to the task threshold so a merged row's outcome
/// thresholds back to its ingested label.
const LABEL_MARGIN: f64 = 1.0;

fn column_mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        0.0
    } else {
        values.iter().sum::<f64>() / values.len() as f64
    }
}

/// Appends `records` to `seed` as new individuals, in ascending `seq`
/// order. Returns a clone of the seed when `records` is empty. The
/// result is bit-deterministic: two shards merging the same delta into
/// the same seed build identical datasets.
pub fn merge_dataset(
    seed: &SpatialDataset,
    task: &TaskSpec,
    records: &[IngestRecord],
) -> Result<SpatialDataset, IngestError> {
    if records.is_empty() {
        return Ok(seed.clone());
    }
    let mut ordered: Vec<IngestRecord> = records.to_vec();
    ordered.sort_unstable_by_key(|r| r.seq);

    // Seed column means, computed once in column order.
    let features = seed.features();
    let feature_means: Vec<f64> = (0..features.cols())
        .map(|c| column_mean(&features.column(c)))
        .collect();
    let outcome_names: Vec<String> = seed.outcome_names().to_vec();
    // Confirm the task outcome exists before building anything.
    let task_col = outcome_names
        .iter()
        .position(|n| n == &task.outcome)
        .ok_or_else(|| IngestError::Data(seed.outcome(&task.outcome).unwrap_err()))?;
    let outcome_means: Vec<f64> = outcome_names
        .iter()
        .map(|n| Ok(column_mean(seed.outcome(n)?)))
        .collect::<Result<_, fsi_data::DataError>>()?;

    let total = seed.len() + ordered.len();
    let mut rows: Vec<Vec<f64>> = Vec::with_capacity(total);
    rows.extend(features.iter_rows().map(|r| r.to_vec()));
    rows.extend(std::iter::repeat_n(feature_means, ordered.len()));

    let mut outcomes: Vec<Vec<f64>> = outcome_names
        .iter()
        .map(|n| Ok(seed.outcome(n)?.to_vec()))
        .collect::<Result<_, fsi_data::DataError>>()?;
    for record in &ordered {
        for (col, series) in outcomes.iter_mut().enumerate() {
            let value = if col == task_col {
                if record.label {
                    task.threshold + LABEL_MARGIN
                } else {
                    task.threshold - LABEL_MARGIN
                }
            } else {
                outcome_means[col]
            };
            series.push(value);
        }
    }

    let mut locations: Vec<Point> = seed.locations().to_vec();
    locations.extend(ordered.iter().map(|r| Point { x: r.x, y: r.y }));

    Ok(SpatialDataset::new(
        seed.grid().clone(),
        seed.feature_names().to_vec(),
        Matrix::from_rows(&rows)?,
        outcome_names,
        outcomes,
        locations,
    )?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fsi_data::synth::city::{CityConfig, CityGenerator};
    use fsi_pipeline::TaskSpec;

    fn seed() -> SpatialDataset {
        CityGenerator::new(CityConfig {
            n_individuals: 120,
            grid_side: 8,
            seed: 11,
            ..Default::default()
        })
        .unwrap()
        .generate()
        .unwrap()
    }

    fn records() -> Vec<IngestRecord> {
        (0..10)
            .map(|i| IngestRecord {
                seq: i,
                x: (i as f64 + 0.5) / 10.0,
                y: 0.52,
                group: (i % 3) as u32,
                label: i % 2 == 0,
            })
            .collect()
    }

    #[test]
    fn empty_delta_merges_to_the_seed_itself() {
        let s = seed();
        let merged = merge_dataset(&s, &TaskSpec::act(), &[]).unwrap();
        assert_eq!(merged.len(), s.len());
        assert_eq!(
            merged.outcome("avg_act").unwrap(),
            s.outcome("avg_act").unwrap()
        );
    }

    #[test]
    fn merged_rows_threshold_back_to_their_ingested_labels() {
        let s = seed();
        let task = TaskSpec::act();
        let recs = records();
        let merged = merge_dataset(&s, &task, &recs).unwrap();
        assert_eq!(merged.len(), s.len() + recs.len());
        let labels = merged
            .threshold_labels(&task.outcome, task.threshold)
            .unwrap();
        for (i, r) in recs.iter().enumerate() {
            assert_eq!(labels[s.len() + i], r.label, "record #{i}");
        }
        // Appended locations are the ingested coordinates.
        assert_eq!(merged.locations()[s.len()].x, recs[0].x);
        assert_eq!(merged.locations()[s.len()].y, recs[0].y);
    }

    #[test]
    fn merge_is_order_insensitive_in_input_but_fixed_in_output() {
        let s = seed();
        let task = TaskSpec::act();
        let recs = records();
        let mut shuffled = recs.clone();
        shuffled.reverse();
        let a = merge_dataset(&s, &task, &recs).unwrap();
        let b = merge_dataset(&s, &task, &shuffled).unwrap();
        // Bit-identical: same locations, same outcomes, same features.
        assert_eq!(a.locations(), b.locations());
        assert_eq!(a.outcome("avg_act").unwrap(), b.outcome("avg_act").unwrap());
        for (ra, rb) in a.features().iter_rows().zip(b.features().iter_rows()) {
            assert_eq!(ra, rb);
        }
    }

    #[test]
    fn unknown_task_outcome_is_rejected() {
        let s = seed();
        let task = TaskSpec {
            outcome: "nope".into(),
            threshold: 1.0,
        };
        assert!(matches!(
            merge_dataset(&s, &task, &records()),
            Err(IngestError::Data(_))
        ));
    }
}
