//! Error type for the streaming-ingestion subsystem.

use std::fmt;

/// Errors produced while buffering, scoring or merging ingested points.
#[derive(Debug)]
pub enum IngestError {
    /// A maintenance spec failed validation.
    InvalidSpec(String),
    /// Ingestion was configured without a dataset to merge into.
    MissingDataset,
    /// The delta buffer and the dataset disagree on the grid shape.
    GridMismatch {
        /// Grid shape `(rows, cols)` the buffer was built over.
        expected: (usize, usize),
        /// Grid shape that was supplied.
        got: (usize, usize),
    },
    /// The task's outcome column is missing from the seed dataset.
    Data(fsi_data::DataError),
    /// The merged feature matrix could not be assembled.
    Ml(fsi_ml::MlError),
    /// Cell statistics could not be built or shifted.
    Core(fsi_core::CoreError),
}

impl fmt::Display for IngestError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IngestError::InvalidSpec(msg) => write!(f, "invalid maintenance spec: {msg}"),
            IngestError::MissingDataset => {
                write!(f, "ingestion requires a dataset to merge into")
            }
            IngestError::GridMismatch { expected, got } => write!(
                f,
                "delta buffer grid is {}x{} but the dataset grid is {}x{}",
                expected.0, expected.1, got.0, got.1
            ),
            IngestError::Data(e) => write!(f, "dataset merge failed: {e}"),
            IngestError::Ml(e) => write!(f, "feature merge failed: {e}"),
            IngestError::Core(e) => write!(f, "cell statistics failed: {e}"),
        }
    }
}

impl std::error::Error for IngestError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            IngestError::Data(e) => Some(e),
            IngestError::Ml(e) => Some(e),
            IngestError::Core(e) => Some(e),
            _ => None,
        }
    }
}

impl From<fsi_data::DataError> for IngestError {
    fn from(e: fsi_data::DataError) -> Self {
        IngestError::Data(e)
    }
}

impl From<fsi_ml::MlError> for IngestError {
    fn from(e: fsi_ml::MlError) -> Self {
        IngestError::Ml(e)
    }
}

impl From<fsi_core::CoreError> for IngestError {
    fn from(e: fsi_core::CoreError) -> Self {
        IngestError::Core(e)
    }
}
