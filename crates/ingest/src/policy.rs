//! The maintenance policy: when does buffered drift justify the cost of
//! an incremental rebuild?

use crate::error::IngestError;
use serde::{Deserialize, Serialize};
use std::time::Duration;

/// When a background maintenance pass should merge the delta buffer and
/// drive the two-phase rebuild barrier. Serde-round-trippable so a
/// deployment config can carry it; [`MaintenanceSpec::validate`] runs
/// before a spec is accepted anywhere (same contract as `CacheSpec`).
///
/// Each trigger is independently disabled by setting it to zero; a
/// valid spec enables at least one.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MaintenanceSpec {
    /// Rebuild when the maximum subtree drift score reaches this
    /// (`0.0` disables; see `DriftDetector` for the score).
    pub drift_threshold: f64,
    /// Rebuild when this many points sit in the buffer (`0` disables).
    pub max_buffered: u64,
    /// Rebuild when the oldest buffered point is at least this old, in
    /// milliseconds — the SLA-style staleness bound (`0` disables).
    pub max_staleness_ms: u64,
    /// How often the background pass re-checks the triggers, in
    /// milliseconds.
    pub poll_interval_ms: u64,
}

impl Default for MaintenanceSpec {
    /// Drift at 0.25, occupancy at 4096, no staleness bound, 200 ms
    /// polling.
    fn default() -> Self {
        Self {
            drift_threshold: 0.25,
            max_buffered: 4096,
            max_staleness_ms: 0,
            poll_interval_ms: 200,
        }
    }
}

impl MaintenanceSpec {
    /// Rejects non-finite or negative thresholds, a zero poll interval,
    /// and specs with every trigger disabled.
    pub fn validate(&self) -> Result<(), IngestError> {
        if !self.drift_threshold.is_finite() || self.drift_threshold < 0.0 {
            return Err(IngestError::InvalidSpec(format!(
                "drift_threshold must be finite and non-negative, got {}",
                self.drift_threshold
            )));
        }
        if self.poll_interval_ms == 0 {
            return Err(IngestError::InvalidSpec(
                "poll_interval_ms must be positive".into(),
            ));
        }
        if self.drift_threshold == 0.0 && self.max_buffered == 0 && self.max_staleness_ms == 0 {
            return Err(IngestError::InvalidSpec(
                "every trigger is disabled — enable drift_threshold, max_buffered \
                 or max_staleness_ms"
                    .into(),
            ));
        }
        Ok(())
    }

    /// The background pass cadence as a [`Duration`].
    pub fn poll_interval(&self) -> Duration {
        Duration::from_millis(self.poll_interval_ms)
    }

    /// Which trigger, if any, the observed buffer state trips.
    pub fn due(
        &self,
        drift_score: f64,
        buffered: u64,
        oldest_age: Option<Duration>,
    ) -> Option<MaintenanceTrigger> {
        if buffered == 0 {
            return None;
        }
        if self.drift_threshold > 0.0 && drift_score >= self.drift_threshold {
            return Some(MaintenanceTrigger::Drift);
        }
        if self.max_buffered > 0 && buffered >= self.max_buffered {
            return Some(MaintenanceTrigger::Occupancy);
        }
        if self.max_staleness_ms > 0 {
            if let Some(age) = oldest_age {
                if age >= Duration::from_millis(self.max_staleness_ms) {
                    return Some(MaintenanceTrigger::Staleness);
                }
            }
        }
        None
    }
}

/// Why a maintenance pass fired.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MaintenanceTrigger {
    /// A subtree's statistics drifted past the threshold.
    Drift,
    /// The buffer reached its occupancy bound.
    Occupancy,
    /// The oldest buffered point aged past the staleness bound.
    Staleness,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_spec_validates_and_round_trips() {
        let spec = MaintenanceSpec::default();
        spec.validate().unwrap();
        let json = serde_json::to_string(&spec).unwrap();
        let back: MaintenanceSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(spec, back);
    }

    #[test]
    fn invalid_specs_are_rejected() {
        let mut spec = MaintenanceSpec {
            drift_threshold: f64::NAN,
            ..MaintenanceSpec::default()
        };
        assert!(spec.validate().is_err());
        spec.drift_threshold = -0.5;
        assert!(spec.validate().is_err());
        let spec = MaintenanceSpec {
            poll_interval_ms: 0,
            ..MaintenanceSpec::default()
        };
        assert!(spec.validate().is_err());
        let all_off = MaintenanceSpec {
            drift_threshold: 0.0,
            max_buffered: 0,
            max_staleness_ms: 0,
            poll_interval_ms: 100,
        };
        let err = all_off.validate().unwrap_err();
        assert!(err.to_string().contains("disabled"), "{err}");
    }

    #[test]
    fn triggers_fire_in_priority_order_and_respect_disabling() {
        let spec = MaintenanceSpec {
            drift_threshold: 0.5,
            max_buffered: 100,
            max_staleness_ms: 1_000,
            poll_interval_ms: 50,
        };
        // Empty buffers never trigger, whatever the other readings say.
        assert_eq!(spec.due(9.0, 0, None), None);
        assert_eq!(spec.due(0.6, 5, None), Some(MaintenanceTrigger::Drift));
        assert_eq!(
            spec.due(0.1, 100, None),
            Some(MaintenanceTrigger::Occupancy)
        );
        assert_eq!(
            spec.due(0.1, 5, Some(Duration::from_secs(2))),
            Some(MaintenanceTrigger::Staleness)
        );
        assert_eq!(spec.due(0.1, 5, Some(Duration::from_millis(10))), None);
        // A disabled trigger never fires.
        let drift_only = MaintenanceSpec {
            drift_threshold: 0.5,
            max_buffered: 0,
            max_staleness_ms: 0,
            poll_interval_ms: 50,
        };
        assert_eq!(
            drift_only.due(0.1, 1_000_000, Some(Duration::from_secs(60))),
            None
        );
    }
}
