//! Drift detection over buffered deltas.
//!
//! The frozen index was trained against one set of per-cell statistics;
//! buffered writes shift them. The detector folds the buffer's per-cell
//! deltas into the baseline `CellStats` (one `with_deltas` pass, O(grid)
//! thanks to the summed-area tables) and then walks the same KD-style
//! rectangle hierarchy the index's tree splits over, scoring each
//! subtree for how far its aggregates moved:
//!
//! ```text
//! score(rect) = (Δcount + |Δlabel − o(rect)·Δcount|) / (count(rect) + 1)
//! ```
//!
//! The first term is relative population growth; the second is the
//! label mass that arrived *out of proportion* to the region's frozen
//! positive fraction `o(rect)` — incoming points that merely mirror the
//! region's existing label mix contribute nothing to it. The report's
//! score is the maximum over every subtree, so a burst concentrated in
//! one small region trips the threshold long before it is visible
//! globally.

use crate::buffer::DeltaBuffer;
use crate::error::IngestError;
use fsi_core::CellStats;
use fsi_data::SpatialDataset;
use fsi_geo::{Axis, CellRect, Grid};
use fsi_pipeline::TaskSpec;

/// Builds the frozen-side statistics drift is measured against: per-cell
/// populations and positive-label sums of `dataset` under `task` (score
/// sums are zero — drift tracks data movement, not model output).
pub fn baseline_stats(dataset: &SpatialDataset, task: &TaskSpec) -> Result<CellStats, IngestError> {
    let grid = dataset.grid();
    let counts = dataset.cell_populations();
    let labels =
        dataset.cell_label_sums(&dataset.threshold_labels(&task.outcome, task.threshold)?)?;
    let scores = vec![0.0; grid.len()];
    Ok(CellStats::new(grid, &counts, &scores, &labels)?)
}

/// One drift measurement over the buffered deltas.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DriftReport {
    /// The maximum subtree score (see the module docs for the formula).
    pub score: f64,
    /// The subtree that scored highest.
    pub hottest: CellRect,
    /// Buffered points that produced this measurement.
    pub buffered: u64,
}

impl DriftReport {
    /// A zero report over `grid` — what an empty buffer measures.
    fn quiet(grid: &Grid) -> Self {
        Self {
            score: 0.0,
            hottest: grid.full_rect(),
            buffered: 0,
        }
    }
}

/// Scores how far the buffered deltas have pushed any subtree of the
/// grid past its frozen statistics.
#[derive(Debug, Clone, Default)]
pub struct DriftDetector;

impl DriftDetector {
    /// Creates a detector.
    pub fn new() -> Self {
        Self
    }

    /// Measures the buffer against `baseline`. The baseline's shape
    /// must match the buffer's grid.
    pub fn measure(
        &self,
        baseline: &CellStats,
        buffer: &DeltaBuffer,
    ) -> Result<DriftReport, IngestError> {
        let grid = buffer.grid();
        if baseline.shape() != (grid.rows(), grid.cols()) {
            return Err(IngestError::GridMismatch {
                expected: baseline.shape(),
                got: (grid.rows(), grid.cols()),
            });
        }
        let buffered = buffer.occupancy();
        if buffered == 0 {
            return Ok(DriftReport::quiet(grid));
        }
        let (count_deltas, label_deltas) = buffer.cell_deltas();
        let zeros = vec![0.0; grid.len()];
        let shifted = baseline.with_deltas(grid, &count_deltas, &zeros, &label_deltas)?;
        let mut report = DriftReport::quiet(grid);
        report.buffered = buffered;
        Self::walk(baseline, &shifted, grid.full_rect(), &mut report);
        Ok(report)
    }

    /// Scores `rect` and recurses into its two KD halves (split along
    /// the longer axis, the same shape the index's tree uses).
    fn walk(baseline: &CellStats, shifted: &CellStats, rect: CellRect, report: &mut DriftReport) {
        let n = baseline.count(&rect);
        let delta_count = shifted.count(&rect) - n;
        if delta_count <= 0.0 {
            // No buffered point landed inside this subtree; neither
            // will any child rect.
            return;
        }
        let delta_label = shifted.label_sum(&rect) - baseline.label_sum(&rect);
        let o = baseline.positive_fraction(&rect).unwrap_or(0.0);
        let score = (delta_count + (delta_label - o * delta_count).abs()) / (n + 1.0);
        if score > report.score {
            report.score = score;
            report.hottest = rect;
        }
        let axis = if rect.num_rows() >= rect.num_cols() {
            Axis::Row
        } else {
            Axis::Col
        };
        if rect.extent(axis) < 2 {
            return;
        }
        let mid = rect.extent(axis) / 2;
        if let Some((lo, hi)) = rect.split_at(axis, mid) {
            Self::walk(baseline, shifted, lo, report);
            Self::walk(baseline, shifted, hi, report);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fsi_geo::Grid;

    fn uniform_baseline(grid: &Grid) -> CellStats {
        let counts = vec![4.0; grid.len()];
        let scores = vec![0.0; grid.len()];
        let labels = vec![2.0; grid.len()];
        CellStats::new(grid, &counts, &scores, &labels).unwrap()
    }

    #[test]
    fn empty_buffer_measures_zero_drift() {
        let grid = Grid::unit(4).unwrap();
        let baseline = uniform_baseline(&grid);
        let buffer = DeltaBuffer::new(grid.clone());
        let report = DriftDetector::new().measure(&baseline, &buffer).unwrap();
        assert_eq!(report.score, 0.0);
        assert_eq!(report.buffered, 0);
    }

    #[test]
    fn concentrated_burst_scores_higher_than_its_global_dilution() {
        let grid = Grid::unit(8).unwrap();
        let baseline = uniform_baseline(&grid);
        let buffer = DeltaBuffer::new(grid.clone());
        // 16 positive points into one cell: locally that cell went from
        // 4 to 20 individuals — drift ~ (16 + |16 − 0.5·16|)/(4+1) = 4.8
        // at the leaf, while globally it is only 24/257 ≈ 0.09.
        for _ in 0..16 {
            buffer.accept(0.06, 0.06, 1, true).unwrap();
        }
        let report = DriftDetector::new().measure(&baseline, &buffer).unwrap();
        assert!(report.score > 4.0, "leaf-level drift, got {}", report.score);
        assert_eq!(report.hottest.num_cells(), 1, "hotspot is one cell");
        assert_eq!(report.buffered, 16);
    }

    #[test]
    fn proportional_inflow_scores_only_population_growth() {
        let grid = Grid::unit(2).unwrap();
        let baseline = uniform_baseline(&grid);
        let buffer = DeltaBuffer::new(grid.clone());
        // Two points into one cell, half positive — exactly the frozen
        // 0.5 positive fraction, so the label term vanishes and the
        // score is pure relative growth: 2/(4+1) = 0.4.
        buffer.accept(0.2, 0.2, 0, true).unwrap();
        buffer.accept(0.3, 0.3, 0, false).unwrap();
        let report = DriftDetector::new().measure(&baseline, &buffer).unwrap();
        assert!((report.score - 0.4).abs() < 1e-12, "got {}", report.score);
    }

    #[test]
    fn grid_shape_mismatch_is_rejected() {
        let baseline = uniform_baseline(&Grid::unit(4).unwrap());
        let buffer = DeltaBuffer::new(Grid::unit(8).unwrap());
        assert!(matches!(
            DriftDetector::new().measure(&baseline, &buffer),
            Err(IngestError::GridMismatch { .. })
        ));
    }
}
