//! The concurrent delta buffer behind `Request::Ingest`.
//!
//! Accepted points land in one of a fixed set of mutex-sharded bins
//! selected by grid cell (the same contention shape as the decision
//! cache's `ShardedLru`: one lock per write, never all of them), while
//! each bin also maintains live per-cell count / label / group-count
//! deltas on top of the frozen snapshot's `CellStats`. Occupancy and
//! the rejected tally are plain atomics so the policy loop and the
//! telemetry scrape never take a lock.

use crate::record::IngestRecord;
use fsi_geo::{Grid, Point};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Shards in the buffer — a power of two so the cell-id mix is a mask.
const SHARD_COUNT: usize = 16;

/// Live per-cell aggregates stacked on top of the frozen statistics.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CellDelta {
    /// Points buffered in this cell.
    pub count: u64,
    /// Positive labels buffered in this cell.
    pub labels: u64,
    /// Buffered count per cohort tag, sorted by tag.
    pub groups: Vec<(u32, u64)>,
}

impl CellDelta {
    fn add(&mut self, group: u32, label: bool) {
        self.count += 1;
        self.labels += u64::from(label);
        match self.groups.binary_search_by_key(&group, |&(g, _)| g) {
            Ok(i) => self.groups[i].1 += 1,
            Err(i) => self.groups.insert(i, (group, 1)),
        }
    }
}

#[derive(Default)]
struct Shard {
    records: Vec<IngestRecord>,
    cells: HashMap<usize, CellDelta>,
}

/// A concurrent buffer of ingested points awaiting the next index
/// maintenance pass.
pub struct DeltaBuffer {
    grid: Grid,
    shards: Vec<Mutex<Shard>>,
    seq: AtomicU64,
    len: AtomicU64,
    accepted: AtomicU64,
    rejected: AtomicU64,
    epoch: Instant,
    /// Nanos-since-epoch **plus one** of the oldest undrained accept;
    /// zero means the buffer is empty. Best-effort across a drain that
    /// races new accepts — staleness may then be under-reported until
    /// the next accept restamps it.
    oldest: AtomicU64,
}

impl DeltaBuffer {
    /// An empty buffer over `grid` — the grid decides which points are
    /// in bounds and which cell a point's deltas land in.
    pub fn new(grid: Grid) -> Self {
        Self {
            grid,
            shards: (0..SHARD_COUNT).map(|_| Mutex::default()).collect(),
            seq: AtomicU64::new(0),
            len: AtomicU64::new(0),
            accepted: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            epoch: Instant::now(),
            oldest: AtomicU64::new(0),
        }
    }

    /// The grid the buffer validates and bins points against.
    pub fn grid(&self) -> &Grid {
        &self.grid
    }

    /// Accepts one observed point, returning its global accept-order
    /// sequence number, or `None` (and a bumped rejected tally) when
    /// the point falls outside the grid.
    pub fn accept(&self, x: f64, y: f64, group: u32, label: bool) -> Option<u64> {
        let Ok(cell) = self.grid.locate(&Point { x, y }) else {
            self.rejected.fetch_add(1, Ordering::Relaxed);
            return None;
        };
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        let record = IngestRecord {
            seq,
            x,
            y,
            group,
            label,
        };
        {
            let mut shard = self.shards[cell % SHARD_COUNT].lock().unwrap();
            shard.records.push(record);
            shard.cells.entry(cell).or_default().add(group, label);
        }
        self.len.fetch_add(1, Ordering::Release);
        self.accepted.fetch_add(1, Ordering::Relaxed);
        let stamp = self.epoch.elapsed().as_nanos().min(u64::MAX as u128 - 1) as u64 + 1;
        let _ = self
            .oldest
            .compare_exchange(0, stamp, Ordering::AcqRel, Ordering::Relaxed);
        Some(seq)
    }

    /// Points currently buffered.
    pub fn occupancy(&self) -> u64 {
        self.len.load(Ordering::Acquire)
    }

    /// `true` when nothing is buffered.
    pub fn is_empty(&self) -> bool {
        self.occupancy() == 0
    }

    /// Points accepted since the buffer was created (drains don't
    /// lower this — it's the cumulative write counter).
    pub fn accepted(&self) -> u64 {
        self.accepted.load(Ordering::Relaxed)
    }

    /// Points rejected for falling outside the grid.
    pub fn rejected(&self) -> u64 {
        self.rejected.load(Ordering::Relaxed)
    }

    /// Age of the oldest buffered point, `None` when empty.
    pub fn oldest_age(&self) -> Option<Duration> {
        let stamp = self.oldest.load(Ordering::Acquire);
        if stamp == 0 {
            return None;
        }
        Some(
            self.epoch
                .elapsed()
                .saturating_sub(Duration::from_nanos(stamp - 1)),
        )
    }

    /// Row-major per-cell `(count, label)` deltas over the buffer's
    /// grid — the drift detector's input, shaped for
    /// `CellStats::with_deltas`.
    pub fn cell_deltas(&self) -> (Vec<f64>, Vec<f64>) {
        let mut counts = vec![0.0; self.grid.len()];
        let mut labels = vec![0.0; self.grid.len()];
        for shard in &self.shards {
            let shard = shard.lock().unwrap();
            for (&cell, delta) in &shard.cells {
                counts[cell] += delta.count as f64;
                labels[cell] += delta.labels as f64;
            }
        }
        (counts, labels)
    }

    /// The live cohort-count deltas of one cell, sorted by tag; empty
    /// when the cell has no buffered points.
    pub fn group_deltas(&self, cell: usize) -> Vec<(u32, u64)> {
        let shard = self.shards[cell % SHARD_COUNT].lock().unwrap();
        shard
            .cells
            .get(&cell)
            .map(|d| d.groups.clone())
            .unwrap_or_default()
    }

    /// Buffered cohort counts summed across all cells, sorted by tag.
    pub fn group_totals(&self) -> Vec<(u32, u64)> {
        let mut totals: HashMap<u32, u64> = HashMap::new();
        for shard in &self.shards {
            let shard = shard.lock().unwrap();
            for delta in shard.cells.values() {
                for &(g, n) in &delta.groups {
                    *totals.entry(g).or_default() += n;
                }
            }
        }
        let mut out: Vec<(u32, u64)> = totals.into_iter().collect();
        out.sort_unstable();
        out
    }

    /// Removes and returns every buffered record in global accept
    /// order, resetting the per-cell deltas. Accepts racing the drain
    /// simply land in the next epoch.
    pub fn drain(&self) -> Vec<IngestRecord> {
        let mut out = Vec::new();
        for shard in &self.shards {
            let mut shard = shard.lock().unwrap();
            out.append(&mut shard.records);
            shard.cells.clear();
        }
        out.sort_unstable_by_key(|r| r.seq);
        self.len.fetch_sub(out.len() as u64, Ordering::AcqRel);
        self.oldest.store(0, Ordering::Release);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn buffer() -> DeltaBuffer {
        DeltaBuffer::new(Grid::unit(4).unwrap())
    }

    #[test]
    fn accepts_assign_global_sequence_numbers() {
        let b = buffer();
        assert_eq!(b.accept(0.1, 0.1, 0, true), Some(0));
        assert_eq!(b.accept(0.9, 0.9, 1, false), Some(1));
        assert_eq!(b.occupancy(), 2);
        assert_eq!(b.accepted(), 2);
        assert!(b.oldest_age().is_some());
    }

    #[test]
    fn out_of_bounds_points_are_rejected_not_buffered() {
        let b = buffer();
        assert_eq!(b.accept(1.5, 0.5, 0, true), None);
        assert_eq!(b.accept(-0.1, 0.5, 0, true), None);
        assert_eq!(b.rejected(), 2);
        assert_eq!(b.occupancy(), 0);
        assert_eq!(b.oldest_age(), None);
    }

    #[test]
    fn cell_deltas_track_counts_labels_and_groups() {
        let b = buffer();
        // Three points in the same cell (0.1, 0.1), two cohorts.
        b.accept(0.05, 0.05, 7, true).unwrap();
        b.accept(0.1, 0.1, 7, false).unwrap();
        b.accept(0.15, 0.2, 3, true).unwrap();
        let cell = b.grid().locate(&Point { x: 0.1, y: 0.1 }).unwrap();
        let (counts, labels) = b.cell_deltas();
        assert_eq!(counts[cell], 3.0);
        assert_eq!(labels[cell], 2.0);
        assert_eq!(counts.iter().sum::<f64>(), 3.0);
        assert_eq!(b.group_deltas(cell), vec![(3, 1), (7, 2)]);
        assert_eq!(b.group_totals(), vec![(3, 1), (7, 2)]);
    }

    #[test]
    fn drain_returns_accept_order_and_resets_deltas() {
        let b = buffer();
        for i in 0..20 {
            let t = i as f64 / 20.0;
            b.accept(t, 1.0 - t - 1e-9, i % 3, i % 2 == 0).unwrap();
        }
        let drained = b.drain();
        assert_eq!(drained.len(), 20);
        let seqs: Vec<u64> = drained.iter().map(|r| r.seq).collect();
        assert!(seqs.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(b.occupancy(), 0);
        assert_eq!(b.oldest_age(), None);
        let (counts, labels) = b.cell_deltas();
        assert!(counts.iter().all(|&c| c == 0.0));
        assert!(labels.iter().all(|&l| l == 0.0));
        // Sequence numbers keep climbing across drains.
        assert_eq!(b.accept(0.5, 0.5, 0, true), Some(20));
    }

    #[test]
    fn concurrent_accepts_never_lose_points() {
        let b = std::sync::Arc::new(buffer());
        std::thread::scope(|scope| {
            for t in 0..4 {
                let b = std::sync::Arc::clone(&b);
                scope.spawn(move || {
                    for i in 0..250 {
                        let x = (t as f64 * 250.0 + i as f64) / 1000.0;
                        b.accept(x, 0.5, t, i % 2 == 0).unwrap();
                    }
                });
            }
        });
        assert_eq!(b.occupancy(), 1000);
        let drained = b.drain();
        assert_eq!(drained.len(), 1000);
        let mut seqs: Vec<u64> = drained.iter().map(|r| r.seq).collect();
        assert!(
            seqs.windows(2).all(|w| w[0] < w[1]),
            "drain must sort by seq"
        );
        seqs.dedup();
        assert_eq!(seqs.len(), 1000, "sequence numbers must be unique");
        let (counts, _) = b.cell_deltas();
        assert!(counts.iter().all(|&c| c == 0.0));
    }
}
