//! Error type for geometry operations.
//!
//! Part of the workspace error hierarchy: each crate keeps a focused
//! enum, and the `fsi` facade unifies them all under `fsi::FsiError`
//! (with source-chaining back to this type). Application code should
//! match on `FsiError`; match here only when using this crate directly.

use std::fmt;

/// Errors produced by grid / partition construction and queries.
#[derive(Debug, Clone, PartialEq)]
pub enum GeoError {
    /// A grid was requested with a zero dimension.
    EmptyGrid {
        /// Requested number of rows.
        rows: usize,
        /// Requested number of columns.
        cols: usize,
    },
    /// A rectangle with non-positive extent was supplied.
    DegenerateRect {
        /// Minimum corner.
        min: (f64, f64),
        /// Maximum corner.
        max: (f64, f64),
    },
    /// A point lies outside the grid bounds.
    PointOutOfBounds {
        /// Offending coordinate.
        point: (f64, f64),
    },
    /// A cell index exceeds the grid extent.
    CellOutOfBounds {
        /// Offending flat cell id.
        cell: usize,
        /// Number of cells in the grid.
        len: usize,
    },
    /// A partition does not cover every cell exactly once.
    IncompletePartition {
        /// First cell found without a region.
        missing_cell: usize,
    },
    /// A region id referenced by a cell does not exist.
    UnknownRegion {
        /// Offending region id.
        region: usize,
    },
    /// A Voronoi partition was requested with no seeds.
    NoSeeds,
    /// A `CellRect` with zero area was used where a non-empty one is needed.
    EmptyCellRect,
}

impl fmt::Display for GeoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GeoError::EmptyGrid { rows, cols } => {
                write!(f, "grid must have positive dimensions, got {rows}x{cols}")
            }
            GeoError::DegenerateRect { min, max } => {
                write!(
                    f,
                    "rectangle must have positive extent: min={min:?} max={max:?}"
                )
            }
            GeoError::PointOutOfBounds { point } => {
                write!(f, "point {point:?} lies outside the grid bounds")
            }
            GeoError::CellOutOfBounds { cell, len } => {
                write!(f, "cell {cell} out of bounds for grid of {len} cells")
            }
            GeoError::IncompletePartition { missing_cell } => {
                write!(f, "partition leaves cell {missing_cell} unassigned")
            }
            GeoError::UnknownRegion { region } => {
                write!(f, "cell references unknown region {region}")
            }
            GeoError::NoSeeds => write!(f, "Voronoi partition requires at least one seed"),
            GeoError::EmptyCellRect => write!(f, "operation requires a non-empty cell rectangle"),
        }
    }
}

impl std::error::Error for GeoError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = GeoError::EmptyGrid { rows: 0, cols: 4 };
        assert!(e.to_string().contains("0x4"));
        let e = GeoError::CellOutOfBounds { cell: 99, len: 10 };
        assert!(e.to_string().contains("99"));
        assert!(e.to_string().contains("10"));
        let e = GeoError::PointOutOfBounds { point: (2.0, 3.0) };
        assert!(e.to_string().contains("outside"));
    }

    #[test]
    fn error_is_std_error() {
        fn takes_err(_: &dyn std::error::Error) {}
        takes_err(&GeoError::NoSeeds);
    }
}
