//! Complete, non-overlapping partitions of the grid into neighborhoods.
//!
//! A *set of neighborhoods* in the paper is "a non-overlapping partitioning
//! of the map that covers the entire space" (§2.1). [`Partition`] encodes
//! that as a region id per grid cell, validates completeness, and provides
//! the refinement relation used by Theorem 2.

use crate::cell_rect::CellRect;
use crate::error::GeoError;
use crate::grid::{CellId, Grid};
use crate::point::Point;
use serde::{Deserialize, Serialize};

/// Identifier of a region (neighborhood) within a [`Partition`].
pub type RegionId = usize;

/// A complete, non-overlapping assignment of grid cells to regions.
///
/// Region ids are dense: `0..num_regions()`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Partition {
    /// `region[cell]` is the region id of `cell`; length = grid len.
    region_of_cell: Vec<u32>,
    num_regions: usize,
    grid_rows: usize,
    grid_cols: usize,
}

impl Partition {
    /// Builds a partition from an explicit per-cell assignment.
    ///
    /// Region ids must form the dense range `0..=max`; every id must be used
    /// by at least one cell.
    pub fn from_assignment(grid: &Grid, assignment: Vec<u32>) -> Result<Self, GeoError> {
        if assignment.len() != grid.len() {
            return Err(GeoError::IncompletePartition {
                missing_cell: assignment.len().min(grid.len()),
            });
        }
        let max = assignment.iter().copied().max().unwrap_or(0) as usize;
        let num_regions = max + 1;
        let mut seen = vec![false; num_regions];
        for &r in &assignment {
            seen[r as usize] = true;
        }
        if let Some(hole) = seen.iter().position(|s| !s) {
            return Err(GeoError::UnknownRegion { region: hole });
        }
        Ok(Self {
            region_of_cell: assignment,
            num_regions,
            grid_rows: grid.rows(),
            grid_cols: grid.cols(),
        })
    }

    /// Builds a partition from a set of cell rectangles that must tile the
    /// grid exactly (the KD-tree leaf set).
    pub fn from_rects(grid: &Grid, rects: &[CellRect]) -> Result<Self, GeoError> {
        const UNASSIGNED: u32 = u32::MAX;
        let mut assignment = vec![UNASSIGNED; grid.len()];
        for (id, rect) in rects.iter().enumerate() {
            for (row, col) in rect.cells() {
                if row >= grid.rows() || col >= grid.cols() {
                    return Err(GeoError::CellOutOfBounds {
                        cell: row * grid.cols() + col,
                        len: grid.len(),
                    });
                }
                let cell = grid.cell_id(row, col);
                if assignment[cell] != UNASSIGNED {
                    // Overlap: the cell already belongs to another rect.
                    return Err(GeoError::UnknownRegion {
                        region: assignment[cell] as usize,
                    });
                }
                assignment[cell] = id as u32;
            }
        }
        if let Some(missing) = assignment.iter().position(|&r| r == UNASSIGNED) {
            return Err(GeoError::IncompletePartition {
                missing_cell: missing,
            });
        }
        Ok(Self {
            region_of_cell: assignment,
            num_regions: rects.len(),
            grid_rows: grid.rows(),
            grid_cols: grid.cols(),
        })
    }

    /// The trivial partition: the whole grid is one neighborhood (`N₁` in
    /// Algorithm 1, line 9).
    pub fn single(grid: &Grid) -> Self {
        Self {
            region_of_cell: vec![0; grid.len()],
            num_regions: 1,
            grid_rows: grid.rows(),
            grid_cols: grid.cols(),
        }
    }

    /// A uniform partition into `block_rows × block_cols` rectangular
    /// regions of (near-)equal size — the "grid" baseline used by the
    /// re-weighting comparison. Blocks differ by at most one row/column
    /// when the grid does not divide evenly.
    pub fn uniform(grid: &Grid, block_rows: usize, block_cols: usize) -> Result<Self, GeoError> {
        if block_rows == 0 || block_cols == 0 {
            return Err(GeoError::EmptyGrid {
                rows: block_rows,
                cols: block_cols,
            });
        }
        let block_rows = block_rows.min(grid.rows());
        let block_cols = block_cols.min(grid.cols());
        let row_edges = split_edges(grid.rows(), block_rows);
        let col_edges = split_edges(grid.cols(), block_cols);
        let mut rects = Vec::with_capacity(block_rows * block_cols);
        for r in 0..block_rows {
            for c in 0..block_cols {
                rects.push(CellRect::new(
                    row_edges[r],
                    row_edges[r + 1],
                    col_edges[c],
                    col_edges[c + 1],
                ));
            }
        }
        Self::from_rects(grid, &rects)
    }

    /// Number of regions.
    #[inline]
    pub fn num_regions(&self) -> usize {
        self.num_regions
    }

    /// Region of a cell.
    #[inline]
    pub fn region_of(&self, cell: CellId) -> RegionId {
        self.region_of_cell[cell] as RegionId
    }

    /// Region of a cell, with bounds checking.
    pub fn try_region_of(&self, cell: CellId) -> Result<RegionId, GeoError> {
        self.region_of_cell
            .get(cell)
            .map(|&r| r as RegionId)
            .ok_or(GeoError::CellOutOfBounds {
                cell,
                len: self.region_of_cell.len(),
            })
    }

    /// Per-cell region ids (length = grid len).
    #[inline]
    pub fn assignments(&self) -> &[u32] {
        &self.region_of_cell
    }

    /// Collects the cells of every region. `O(cells)`.
    pub fn cells_by_region(&self) -> Vec<Vec<CellId>> {
        let mut out = vec![Vec::new(); self.num_regions];
        for (cell, &r) in self.region_of_cell.iter().enumerate() {
            out[r as usize].push(cell);
        }
        out
    }

    /// Number of cells per region.
    pub fn cell_counts(&self) -> Vec<usize> {
        let mut out = vec![0usize; self.num_regions];
        for &r in &self.region_of_cell {
            out[r as usize] += 1;
        }
        out
    }

    /// Centroid of each region in map coordinates (mean of covered cell
    /// centroids) — used by the `CentroidXY` location encoding.
    pub fn region_centroids(&self, grid: &Grid) -> Result<Vec<Point>, GeoError> {
        if grid.rows() != self.grid_rows || grid.cols() != self.grid_cols {
            return Err(GeoError::EmptyGrid {
                rows: grid.rows(),
                cols: grid.cols(),
            });
        }
        let mut sx = vec![0.0f64; self.num_regions];
        let mut sy = vec![0.0f64; self.num_regions];
        let mut n = vec![0usize; self.num_regions];
        for cell in grid.cells() {
            let c = grid.centroid(cell)?;
            let r = self.region_of(cell);
            sx[r] += c.x;
            sy[r] += c.y;
            n[r] += 1;
        }
        Ok((0..self.num_regions)
            .map(|r| Point::new(sx[r] / n[r] as f64, sy[r] / n[r] as f64))
            .collect())
    }

    /// `true` when `self` is a *sub-partitioning* (refinement) of `coarse`:
    /// every region of `self` lies entirely inside one region of `coarse`
    /// (Theorem 2's premise). Every partition refines the single-region
    /// partition, and refines itself.
    pub fn refines(&self, coarse: &Partition) -> bool {
        if self.region_of_cell.len() != coarse.region_of_cell.len() {
            return false;
        }
        // parent[r] = the coarse region that fine region r maps into.
        let mut parent: Vec<Option<u32>> = vec![None; self.num_regions];
        for (cell, &fine) in self.region_of_cell.iter().enumerate() {
            let c = coarse.region_of_cell[cell];
            match parent[fine as usize] {
                None => parent[fine as usize] = Some(c),
                Some(p) if p == c => {}
                Some(_) => return false,
            }
        }
        true
    }

    /// Merges this partition's regions according to `group_of_region`,
    /// producing a coarser partition. Useful for constructing Theorem-2
    /// test pairs.
    pub fn coarsen(&self, group_of_region: &[u32]) -> Result<Partition, GeoError> {
        if group_of_region.len() != self.num_regions {
            return Err(GeoError::UnknownRegion {
                region: group_of_region.len(),
            });
        }
        let assignment: Vec<u32> = self
            .region_of_cell
            .iter()
            .map(|&r| group_of_region[r as usize])
            .collect();
        let grid = Grid::new(crate::rect::Rect::unit(), self.grid_rows, self.grid_cols)?;
        // Re-densify ids in case some groups are unused.
        let max = assignment.iter().copied().max().unwrap_or(0) as usize;
        let mut remap = vec![u32::MAX; max + 1];
        let mut next = 0u32;
        let dense: Vec<u32> = assignment
            .iter()
            .map(|&g| {
                if remap[g as usize] == u32::MAX {
                    remap[g as usize] = next;
                    next += 1;
                }
                remap[g as usize]
            })
            .collect();
        Partition::from_assignment(&grid, dense)
    }

    /// Grid shape this partition was built over.
    pub fn grid_shape(&self) -> (usize, usize) {
        (self.grid_rows, self.grid_cols)
    }
}

/// Splits `n` units into `k` contiguous chunks differing by at most one,
/// returning the `k + 1` edge offsets.
fn split_edges(n: usize, k: usize) -> Vec<usize> {
    let base = n / k;
    let extra = n % k;
    let mut edges = Vec::with_capacity(k + 1);
    let mut pos = 0;
    edges.push(0);
    for i in 0..k {
        pos += base + usize::from(i < extra);
        edges.push(pos);
    }
    edges
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid4() -> Grid {
        Grid::unit(4).unwrap()
    }

    #[test]
    fn single_partition_has_one_region() {
        let g = grid4();
        let p = Partition::single(&g);
        assert_eq!(p.num_regions(), 1);
        assert!(g.cells().all(|c| p.region_of(c) == 0));
    }

    #[test]
    fn from_rects_tiles_exactly() {
        let g = grid4();
        let rects = [CellRect::new(0, 2, 0, 4), CellRect::new(2, 4, 0, 4)];
        let p = Partition::from_rects(&g, &rects).unwrap();
        assert_eq!(p.num_regions(), 2);
        assert_eq!(p.region_of(g.cell_id(0, 0)), 0);
        assert_eq!(p.region_of(g.cell_id(3, 3)), 1);
    }

    #[test]
    fn from_rects_rejects_gaps_and_overlaps() {
        let g = grid4();
        // Gap: bottom half missing.
        assert!(matches!(
            Partition::from_rects(&g, &[CellRect::new(0, 2, 0, 4)]),
            Err(GeoError::IncompletePartition { .. })
        ));
        // Overlap.
        let rects = [CellRect::new(0, 3, 0, 4), CellRect::new(2, 4, 0, 4)];
        assert!(Partition::from_rects(&g, &rects).is_err());
        // Out of grid bounds.
        let rects = [CellRect::new(0, 5, 0, 4)];
        assert!(Partition::from_rects(&g, &rects).is_err());
    }

    #[test]
    fn from_assignment_requires_dense_ids() {
        let g = grid4();
        let mut a = vec![0u32; 16];
        a[3] = 2; // id 1 unused
        assert!(matches!(
            Partition::from_assignment(&g, a),
            Err(GeoError::UnknownRegion { region: 1 })
        ));
    }

    #[test]
    fn uniform_partition_counts() {
        let g = grid4();
        let p = Partition::uniform(&g, 2, 2).unwrap();
        assert_eq!(p.num_regions(), 4);
        assert_eq!(p.cell_counts(), vec![4, 4, 4, 4]);
        // Uneven division: 4 rows into 3 blocks -> 2,1,1.
        let p = Partition::uniform(&g, 3, 1).unwrap();
        assert_eq!(p.num_regions(), 3);
        let counts = p.cell_counts();
        assert_eq!(counts.iter().sum::<usize>(), 16);
        assert_eq!(counts, vec![8, 4, 4]);
    }

    #[test]
    fn uniform_caps_blocks_at_grid_size() {
        let g = grid4();
        let p = Partition::uniform(&g, 100, 100).unwrap();
        assert_eq!(p.num_regions(), 16);
    }

    #[test]
    fn refinement_relation() {
        let g = grid4();
        let coarse = Partition::uniform(&g, 2, 1).unwrap();
        let fine = Partition::uniform(&g, 4, 2).unwrap();
        let cross = Partition::uniform(&g, 1, 4).unwrap();
        assert!(fine.refines(&coarse));
        assert!(!coarse.refines(&fine));
        assert!(!cross.refines(&coarse));
        assert!(coarse.refines(&coarse));
        assert!(fine.refines(&Partition::single(&g)));
    }

    #[test]
    fn coarsen_produces_refinement_parent() {
        let g = grid4();
        let fine = Partition::uniform(&g, 2, 2).unwrap();
        let coarse = fine.coarsen(&[0, 0, 1, 1]).unwrap();
        assert_eq!(coarse.num_regions(), 2);
        assert!(fine.refines(&coarse));
    }

    #[test]
    fn coarsen_densifies_ids() {
        let g = grid4();
        let fine = Partition::uniform(&g, 2, 2).unwrap();
        // Groups 5 and 9: sparse ids must be re-densified.
        let coarse = fine.coarsen(&[5, 5, 9, 9]).unwrap();
        assert_eq!(coarse.num_regions(), 2);
    }

    #[test]
    fn centroids_of_uniform_quadrants() {
        let g = grid4();
        let p = Partition::uniform(&g, 2, 2).unwrap();
        let cents = p.region_centroids(&g).unwrap();
        assert_eq!(cents.len(), 4);
        // Region 0 is the south-west quadrant.
        assert!((cents[0].x - 0.25).abs() < 1e-12);
        assert!((cents[0].y - 0.25).abs() < 1e-12);
    }

    #[test]
    fn try_region_of_bounds_check() {
        let g = grid4();
        let p = Partition::single(&g);
        assert!(p.try_region_of(15).is_ok());
        assert!(p.try_region_of(16).is_err());
    }

    #[test]
    fn split_edges_balance() {
        assert_eq!(split_edges(10, 3), vec![0, 4, 7, 10]);
        assert_eq!(split_edges(4, 4), vec![0, 1, 2, 3, 4]);
        assert_eq!(split_edges(4, 1), vec![0, 4]);
    }
}
