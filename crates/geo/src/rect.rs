//! Axis-aligned rectangles in map coordinates.

use crate::error::GeoError;
use crate::point::Point;
use serde::{Deserialize, Serialize};

/// A closed axis-aligned rectangle `[min_x, max_x] × [min_y, max_y]`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Rect {
    /// West edge.
    pub min_x: f64,
    /// South edge.
    pub min_y: f64,
    /// East edge.
    pub max_x: f64,
    /// North edge.
    pub max_y: f64,
}

impl Rect {
    /// Creates a rectangle, validating that it has positive extent on both
    /// axes and finite coordinates.
    pub fn new(min_x: f64, min_y: f64, max_x: f64, max_y: f64) -> Result<Self, GeoError> {
        let ok = min_x.is_finite()
            && min_y.is_finite()
            && max_x.is_finite()
            && max_y.is_finite()
            && max_x > min_x
            && max_y > min_y;
        if !ok {
            return Err(GeoError::DegenerateRect {
                min: (min_x, min_y),
                max: (max_x, max_y),
            });
        }
        Ok(Self {
            min_x,
            min_y,
            max_x,
            max_y,
        })
    }

    /// The unit square `[0,1]²`, the default domain of the synthetic cities.
    pub fn unit() -> Self {
        Self {
            min_x: 0.0,
            min_y: 0.0,
            max_x: 1.0,
            max_y: 1.0,
        }
    }

    /// Width (east–west extent).
    #[inline]
    pub fn width(&self) -> f64 {
        self.max_x - self.min_x
    }

    /// Height (north–south extent).
    #[inline]
    pub fn height(&self) -> f64 {
        self.max_y - self.min_y
    }

    /// Area.
    #[inline]
    pub fn area(&self) -> f64 {
        self.width() * self.height()
    }

    /// Perimeter.
    #[inline]
    pub fn perimeter(&self) -> f64 {
        2.0 * (self.width() + self.height())
    }

    /// Center point.
    #[inline]
    pub fn center(&self) -> Point {
        Point::new(
            (self.min_x + self.max_x) / 2.0,
            (self.min_y + self.max_y) / 2.0,
        )
    }

    /// `true` when `p` lies inside or on the boundary.
    #[inline]
    pub fn contains(&self, p: &Point) -> bool {
        p.x >= self.min_x && p.x <= self.max_x && p.y >= self.min_y && p.y <= self.max_y
    }

    /// `true` when the two rectangles share any area (boundary contact counts).
    #[inline]
    pub fn intersects(&self, other: &Rect) -> bool {
        self.min_x <= other.max_x
            && other.min_x <= self.max_x
            && self.min_y <= other.max_y
            && other.min_y <= self.max_y
    }

    /// Smallest rectangle containing both.
    pub fn union(&self, other: &Rect) -> Rect {
        Rect {
            min_x: self.min_x.min(other.min_x),
            min_y: self.min_y.min(other.min_y),
            max_x: self.max_x.max(other.max_x),
            max_y: self.max_y.max(other.max_y),
        }
    }

    /// Clamps a point into the rectangle (used when snapping jittered
    /// synthetic locations back onto the map).
    pub fn clamp(&self, p: Point) -> Point {
        Point::new(
            p.x.clamp(self.min_x, self.max_x),
            p.y.clamp(self.min_y, self.max_y),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_rejects_degenerate() {
        assert!(Rect::new(0.0, 0.0, 0.0, 1.0).is_err());
        assert!(Rect::new(0.0, 0.0, -1.0, 1.0).is_err());
        assert!(Rect::new(0.0, f64::NAN, 1.0, 1.0).is_err());
        assert!(Rect::new(0.0, 0.0, 1.0, 1.0).is_ok());
    }

    #[test]
    fn geometry_measures() {
        let r = Rect::new(0.0, 0.0, 4.0, 2.0).unwrap();
        assert_eq!(r.width(), 4.0);
        assert_eq!(r.height(), 2.0);
        assert_eq!(r.area(), 8.0);
        assert_eq!(r.perimeter(), 12.0);
        assert_eq!(r.center(), Point::new(2.0, 1.0));
    }

    #[test]
    fn containment_includes_boundary() {
        let r = Rect::unit();
        assert!(r.contains(&Point::new(0.0, 0.0)));
        assert!(r.contains(&Point::new(1.0, 1.0)));
        assert!(r.contains(&Point::new(0.5, 0.5)));
        assert!(!r.contains(&Point::new(1.0001, 0.5)));
    }

    #[test]
    fn intersection_and_union() {
        let a = Rect::new(0.0, 0.0, 2.0, 2.0).unwrap();
        let b = Rect::new(1.0, 1.0, 3.0, 3.0).unwrap();
        let c = Rect::new(5.0, 5.0, 6.0, 6.0).unwrap();
        assert!(a.intersects(&b));
        assert!(!a.intersects(&c));
        let u = a.union(&c);
        assert_eq!((u.min_x, u.min_y, u.max_x, u.max_y), (0.0, 0.0, 6.0, 6.0));
    }

    #[test]
    fn touching_rects_intersect() {
        let a = Rect::new(0.0, 0.0, 1.0, 1.0).unwrap();
        let b = Rect::new(1.0, 0.0, 2.0, 1.0).unwrap();
        assert!(a.intersects(&b));
    }

    #[test]
    fn clamp_snaps_outside_points() {
        let r = Rect::unit();
        assert_eq!(r.clamp(Point::new(2.0, -1.0)), Point::new(1.0, 0.0));
        assert_eq!(r.clamp(Point::new(0.3, 0.7)), Point::new(0.3, 0.7));
    }
}
