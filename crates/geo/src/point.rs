//! 2-D points in map coordinates.

use serde::{Deserialize, Serialize};

/// A point in continuous map coordinates.
///
/// The workspace convention is `x` grows eastward and `y` grows northward;
/// the synthetic city generators use the unit square `[0,1]²` but nothing in
/// this crate assumes that.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Point {
    /// Easting.
    pub x: f64,
    /// Northing.
    pub y: f64,
}

impl Point {
    /// Creates a point.
    #[inline]
    pub const fn new(x: f64, y: f64) -> Self {
        Self { x, y }
    }

    /// Euclidean distance to `other`.
    #[inline]
    pub fn distance(&self, other: &Point) -> f64 {
        self.distance_sq(other).sqrt()
    }

    /// Squared Euclidean distance to `other` (cheaper for comparisons).
    #[inline]
    pub fn distance_sq(&self, other: &Point) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        dx * dx + dy * dy
    }

    /// Component-wise midpoint.
    #[inline]
    pub fn midpoint(&self, other: &Point) -> Point {
        Point::new((self.x + other.x) / 2.0, (self.y + other.y) / 2.0)
    }

    /// `true` when both coordinates are finite.
    #[inline]
    pub fn is_finite(&self) -> bool {
        self.x.is_finite() && self.y.is_finite()
    }
}

impl From<(f64, f64)> for Point {
    fn from((x, y): (f64, f64)) -> Self {
        Point::new(x, y)
    }
}

impl From<Point> for (f64, f64) {
    fn from(p: Point) -> Self {
        (p.x, p.y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distance_matches_pythagoras() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(3.0, 4.0);
        assert_eq!(a.distance(&b), 5.0);
        assert_eq!(a.distance_sq(&b), 25.0);
    }

    #[test]
    fn distance_is_symmetric() {
        let a = Point::new(-1.5, 2.0);
        let b = Point::new(7.25, -3.0);
        assert_eq!(a.distance(&b), b.distance(&a));
    }

    #[test]
    fn midpoint_is_halfway() {
        let a = Point::new(0.0, 2.0);
        let b = Point::new(4.0, 6.0);
        assert_eq!(a.midpoint(&b), Point::new(2.0, 4.0));
    }

    #[test]
    fn tuple_conversions_round_trip() {
        let p: Point = (1.25, -0.5).into();
        let t: (f64, f64) = p.into();
        assert_eq!(t, (1.25, -0.5));
    }

    #[test]
    fn finiteness_detects_nan_and_inf() {
        assert!(Point::new(0.0, 0.0).is_finite());
        assert!(!Point::new(f64::NAN, 0.0).is_finite());
        assert!(!Point::new(0.0, f64::INFINITY).is_finite());
    }
}
