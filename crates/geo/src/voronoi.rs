//! Seeded Voronoi tessellation of the grid — the zip-code surrogate.
//!
//! The paper's Figure 6 and its baseline comparison use *zip code
//! partitioning*. Zip codes are irregular, contiguous regions whose density
//! tracks population. Without proprietary boundary data we reproduce those
//! properties with a Voronoi tessellation: seed cells (e.g. sampled near
//! population centers) claim every grid cell closest to them, yielding a
//! complete, non-overlapping, contiguous partition.

use crate::error::GeoError;
use crate::grid::Grid;
use crate::partition::Partition;
use crate::point::Point;

/// Builds a Voronoi [`Partition`] of `grid` around `seeds` (map
/// coordinates). Cell ownership is decided by centroid distance; ties go to
/// the lower seed index, making the result deterministic.
pub fn voronoi_partition(grid: &Grid, seeds: &[Point]) -> Result<Partition, GeoError> {
    if seeds.is_empty() {
        return Err(GeoError::NoSeeds);
    }
    for s in seeds {
        if !s.is_finite() {
            return Err(GeoError::PointOutOfBounds { point: (s.x, s.y) });
        }
    }
    let mut assignment = Vec::with_capacity(grid.len());
    for cell in grid.cells() {
        let c = grid.centroid(cell)?;
        let mut best = 0usize;
        let mut best_d = f64::INFINITY;
        for (i, s) in seeds.iter().enumerate() {
            let d = c.distance_sq(s);
            if d < best_d {
                best_d = d;
                best = i;
            }
        }
        assignment.push(best as u32);
    }
    // Some seeds may own no cells (e.g. coincident seeds); densify.
    densify(grid, assignment)
}

fn densify(grid: &Grid, assignment: Vec<u32>) -> Result<Partition, GeoError> {
    let max = assignment.iter().copied().max().unwrap_or(0) as usize;
    let mut remap = vec![u32::MAX; max + 1];
    let mut next = 0u32;
    let dense: Vec<u32> = assignment
        .iter()
        .map(|&g| {
            let slot = &mut remap[g as usize];
            if *slot == u32::MAX {
                *slot = next;
                next += 1;
            }
            *slot
        })
        .collect();
    Partition::from_assignment(grid, dense)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_empty_seed_set() {
        let g = Grid::unit(4).unwrap();
        assert!(matches!(voronoi_partition(&g, &[]), Err(GeoError::NoSeeds)));
    }

    #[test]
    fn rejects_non_finite_seed() {
        let g = Grid::unit(4).unwrap();
        assert!(voronoi_partition(&g, &[Point::new(f64::NAN, 0.0)]).is_err());
    }

    #[test]
    fn single_seed_claims_everything() {
        let g = Grid::unit(4).unwrap();
        let p = voronoi_partition(&g, &[Point::new(0.5, 0.5)]).unwrap();
        assert_eq!(p.num_regions(), 1);
    }

    #[test]
    fn two_seeds_split_halves() {
        let g = Grid::unit(4).unwrap();
        let p = voronoi_partition(&g, &[Point::new(0.25, 0.5), Point::new(0.75, 0.5)]).unwrap();
        assert_eq!(p.num_regions(), 2);
        // West column belongs to seed 0, east column to seed 1.
        assert_eq!(p.region_of(g.cell_id(0, 0)), 0);
        assert_eq!(p.region_of(g.cell_id(0, 3)), 1);
        let counts = p.cell_counts();
        assert_eq!(counts, vec![8, 8]);
    }

    #[test]
    fn coincident_seeds_are_densified() {
        let g = Grid::unit(4).unwrap();
        let s = Point::new(0.3, 0.3);
        // Seed 1 is shadowed by seed 0 (ties go to lower index).
        let p = voronoi_partition(&g, &[s, s, Point::new(0.9, 0.9)]).unwrap();
        assert_eq!(p.num_regions(), 2);
    }

    #[test]
    fn regions_are_contiguous_4_connected() {
        // Voronoi regions of centroid distance on a grid are connected;
        // verify with a flood fill on a moderately complex seed set.
        let g = Grid::unit(16).unwrap();
        let seeds = [
            Point::new(0.1, 0.2),
            Point::new(0.8, 0.3),
            Point::new(0.5, 0.9),
            Point::new(0.3, 0.6),
            Point::new(0.95, 0.95),
        ];
        let p = voronoi_partition(&g, &seeds).unwrap();
        let cells_by_region = p.cells_by_region();
        for (region, cells) in cells_by_region.iter().enumerate() {
            assert!(!cells.is_empty());
            // Flood fill from the first cell.
            let mut seen = std::collections::HashSet::new();
            let mut stack = vec![cells[0]];
            seen.insert(cells[0]);
            while let Some(cell) = stack.pop() {
                let (r, c) = g.row_col(cell);
                let mut neighbors = Vec::new();
                if r > 0 {
                    neighbors.push(g.cell_id(r - 1, c));
                }
                if r + 1 < g.rows() {
                    neighbors.push(g.cell_id(r + 1, c));
                }
                if c > 0 {
                    neighbors.push(g.cell_id(r, c - 1));
                }
                if c + 1 < g.cols() {
                    neighbors.push(g.cell_id(r, c + 1));
                }
                for n in neighbors {
                    if p.region_of(n) == region && seen.insert(n) {
                        stack.push(n);
                    }
                }
            }
            assert_eq!(seen.len(), cells.len(), "region {region} is disconnected");
        }
    }
}
