//! # fsi-geo — grid and geometry substrate for fair spatial indexing
//!
//! This crate provides the spatial primitives the rest of the `fsi`
//! workspace is built on:
//!
//! * [`Point`] — a 2-D location in map coordinates.
//! * [`Rect`] — an axis-aligned rectangle in map coordinates.
//! * [`Grid`] — the `U × V` base grid the paper overlays on the map
//!   (Section 2.1 of *Fair Spatial Indexing*, EDBT 2024). It maps points to
//!   cells and cells to centroids.
//! * [`CellRect`] — a rectangular block of grid cells; every node of a
//!   KD-tree over the grid covers exactly one `CellRect`.
//! * [`Partition`] — a complete, non-overlapping assignment of grid cells to
//!   regions ("neighborhoods" in the paper), with validation and a
//!   refinement test used by the Theorem-2 machinery.
//! * [`voronoi`] — a seeded Voronoi tessellation used as the zip-code
//!   partitioning surrogate.
//! * [`metrics`] — spatial quality of partitions: per-region area,
//!   perimeter, compactness and population balance.
//! * [`SummedAreaTable`] — O(1) rectangle sums over
//!   per-cell aggregates, the workhorse behind the split-index search.
//!
//! The crate is deliberately free of any ML or fairness concepts: it only
//! knows about space.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cell_rect;
pub mod error;
pub mod grid;
pub mod metrics;
pub mod partition;
pub mod point;
pub mod rect;
pub mod sat;
pub mod voronoi;

pub use cell_rect::{Axis, CellRect};
pub use error::GeoError;
pub use grid::{CellId, Grid};
pub use partition::{Partition, RegionId};
pub use point::Point;
pub use rect::Rect;
pub use sat::SummedAreaTable;
