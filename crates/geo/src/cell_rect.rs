//! Rectangular blocks of grid cells.
//!
//! A KD-tree over the base grid only ever produces regions that are
//! contiguous rectangular blocks of cells; [`CellRect`] is that region type.
//! Ranges are half-open: `rows ∈ [row_start, row_end)`,
//! `cols ∈ [col_start, col_end)`.

use serde::{Deserialize, Serialize};

/// The axis a KD-tree split runs along.
///
/// Splitting on [`Axis::Row`] groups *rows* (a horizontal cut line);
/// splitting on [`Axis::Col`] groups *columns* (a vertical cut line).
/// Algorithm 1 of the paper alternates axes with the tree height
/// (`axis = th mod 2`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Axis {
    /// Split between rows (the paper's default orientation).
    Row,
    /// Split between columns (the paper's "transpose" case).
    Col,
}

impl Axis {
    /// The other axis.
    #[inline]
    pub fn other(self) -> Axis {
        match self {
            Axis::Row => Axis::Col,
            Axis::Col => Axis::Row,
        }
    }

    /// Axis used at tree height `th` per Algorithm 1 (`th mod 2`):
    /// even heights split rows, odd heights split columns.
    #[inline]
    pub fn for_height(th: usize) -> Axis {
        if th.is_multiple_of(2) {
            Axis::Row
        } else {
            Axis::Col
        }
    }
}

/// A half-open rectangular block of grid cells.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct CellRect {
    /// First row (inclusive).
    pub row_start: usize,
    /// Last row (exclusive).
    pub row_end: usize,
    /// First column (inclusive).
    pub col_start: usize,
    /// Last column (exclusive).
    pub col_end: usize,
}

impl CellRect {
    /// Creates a block; empty blocks (`start == end`) are allowed and
    /// reported by [`CellRect::is_empty`].
    pub const fn new(row_start: usize, row_end: usize, col_start: usize, col_end: usize) -> Self {
        Self {
            row_start,
            row_end,
            col_start,
            col_end,
        }
    }

    /// Number of rows spanned.
    #[inline]
    pub fn num_rows(&self) -> usize {
        self.row_end.saturating_sub(self.row_start)
    }

    /// Number of columns spanned.
    #[inline]
    pub fn num_cols(&self) -> usize {
        self.col_end.saturating_sub(self.col_start)
    }

    /// Number of cells covered.
    #[inline]
    pub fn num_cells(&self) -> usize {
        self.num_rows() * self.num_cols()
    }

    /// `true` when the block covers no cells.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.num_cells() == 0
    }

    /// Extent along `axis` (rows for [`Axis::Row`], columns for
    /// [`Axis::Col`]).
    #[inline]
    pub fn extent(&self, axis: Axis) -> usize {
        match axis {
            Axis::Row => self.num_rows(),
            Axis::Col => self.num_cols(),
        }
    }

    /// `true` when `(row, col)` lies inside the block.
    #[inline]
    pub fn contains(&self, row: usize, col: usize) -> bool {
        row >= self.row_start && row < self.row_end && col >= self.col_start && col < self.col_end
    }

    /// Splits the block after `offset` units along `axis`
    /// (`offset ∈ 1..extent`), returning `(low, high)`. This is the
    /// `L_k / R_k` division of Algorithm 2 with `k = offset`.
    ///
    /// Returns `None` when the offset would produce an empty side.
    pub fn split_at(&self, axis: Axis, offset: usize) -> Option<(CellRect, CellRect)> {
        if offset == 0 || offset >= self.extent(axis) {
            return None;
        }
        Some(match axis {
            Axis::Row => {
                let mid = self.row_start + offset;
                (
                    CellRect::new(self.row_start, mid, self.col_start, self.col_end),
                    CellRect::new(mid, self.row_end, self.col_start, self.col_end),
                )
            }
            Axis::Col => {
                let mid = self.col_start + offset;
                (
                    CellRect::new(self.row_start, self.row_end, self.col_start, mid),
                    CellRect::new(self.row_start, self.row_end, mid, self.col_end),
                )
            }
        })
    }

    /// Splits into four quadrants at the given row/column (used by the
    /// fair-quadtree extension). Any empty quadrant is omitted.
    pub fn split_quad(&self, row_mid: usize, col_mid: usize) -> Vec<CellRect> {
        let rows = [(self.row_start, row_mid), (row_mid, self.row_end)];
        let cols = [(self.col_start, col_mid), (col_mid, self.col_end)];
        let mut out = Vec::with_capacity(4);
        for &(r0, r1) in &rows {
            for &(c0, c1) in &cols {
                let q = CellRect::new(r0, r1, c0, c1);
                if !q.is_empty() {
                    out.push(q);
                }
            }
        }
        out
    }

    /// `true` when `other` lies entirely within `self`.
    pub fn contains_rect(&self, other: &CellRect) -> bool {
        other.is_empty()
            || (other.row_start >= self.row_start
                && other.row_end <= self.row_end
                && other.col_start >= self.col_start
                && other.col_end <= self.col_end)
    }

    /// `true` when the blocks share at least one cell.
    pub fn intersects(&self, other: &CellRect) -> bool {
        !self.is_empty()
            && !other.is_empty()
            && self.row_start < other.row_end
            && other.row_start < self.row_end
            && self.col_start < other.col_end
            && other.col_start < self.col_end
    }

    /// Iterates over all `(row, col)` pairs in the block, row-major.
    pub fn cells(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        let cols = self.col_start..self.col_end;
        (self.row_start..self.row_end).flat_map(move |r| cols.clone().map(move |c| (r, c)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn axis_alternation_matches_algorithm_1() {
        assert_eq!(Axis::for_height(0), Axis::Row);
        assert_eq!(Axis::for_height(1), Axis::Col);
        assert_eq!(Axis::for_height(2), Axis::Row);
        assert_eq!(Axis::Row.other(), Axis::Col);
        assert_eq!(Axis::Col.other(), Axis::Row);
    }

    #[test]
    fn counts_and_emptiness() {
        let r = CellRect::new(2, 5, 1, 4);
        assert_eq!(r.num_rows(), 3);
        assert_eq!(r.num_cols(), 3);
        assert_eq!(r.num_cells(), 9);
        assert!(!r.is_empty());
        assert!(CellRect::new(2, 2, 0, 4).is_empty());
    }

    #[test]
    fn split_at_partitions_cells() {
        let r = CellRect::new(0, 4, 0, 6);
        let (lo, hi) = r.split_at(Axis::Row, 1).unwrap();
        assert_eq!(lo, CellRect::new(0, 1, 0, 6));
        assert_eq!(hi, CellRect::new(1, 4, 0, 6));
        assert_eq!(lo.num_cells() + hi.num_cells(), r.num_cells());

        let (lo, hi) = r.split_at(Axis::Col, 5).unwrap();
        assert_eq!(lo.num_cols(), 5);
        assert_eq!(hi.num_cols(), 1);
    }

    #[test]
    fn split_at_rejects_empty_sides() {
        let r = CellRect::new(0, 4, 0, 6);
        assert!(r.split_at(Axis::Row, 0).is_none());
        assert!(r.split_at(Axis::Row, 4).is_none());
        assert!(r.split_at(Axis::Col, 6).is_none());
    }

    #[test]
    fn quad_split_covers_all_cells() {
        let r = CellRect::new(0, 4, 0, 4);
        let quads = r.split_quad(2, 2);
        assert_eq!(quads.len(), 4);
        let total: usize = quads.iter().map(CellRect::num_cells).sum();
        assert_eq!(total, r.num_cells());
        // Degenerate quad split keeps only non-empty quadrants.
        let quads = r.split_quad(0, 2);
        assert_eq!(quads.len(), 2);
        let total: usize = quads.iter().map(CellRect::num_cells).sum();
        assert_eq!(total, r.num_cells());
    }

    #[test]
    fn containment_and_intersection() {
        let outer = CellRect::new(0, 10, 0, 10);
        let inner = CellRect::new(2, 5, 3, 7);
        let disjoint = CellRect::new(10, 12, 0, 10);
        assert!(outer.contains_rect(&inner));
        assert!(!inner.contains_rect(&outer));
        assert!(outer.intersects(&inner));
        assert!(!outer.intersects(&disjoint));
        // Empty rect contained everywhere, intersects nothing.
        let empty = CellRect::new(3, 3, 0, 0);
        assert!(inner.contains_rect(&empty));
        assert!(!inner.intersects(&empty));
    }

    #[test]
    fn cells_iterator_is_row_major_and_complete() {
        let r = CellRect::new(1, 3, 4, 6);
        let cells: Vec<_> = r.cells().collect();
        assert_eq!(cells, vec![(1, 4), (1, 5), (2, 4), (2, 5)]);
    }

    #[test]
    fn extent_respects_axis() {
        let r = CellRect::new(0, 3, 0, 7);
        assert_eq!(r.extent(Axis::Row), 3);
        assert_eq!(r.extent(Axis::Col), 7);
    }
}
