//! Summed-area tables (2-D prefix sums) over per-cell values.
//!
//! The fair split search (Algorithm 2) evaluates the objective for every
//! candidate index `k`, each needing the population, score-sum and
//! label-sum of two sub-rectangles. A summed-area table answers any
//! rectangle sum in O(1) after an O(cells) build, making a full split
//! search O(U' + V') per node instead of O(U'·V').

use crate::cell_rect::CellRect;
use crate::grid::Grid;

/// A summed-area table over `f64` per-cell values.
///
/// `prefix[(r+1)*(cols+1) + (c+1)]` holds the sum over all cells with
/// `row <= r` and `col <= c`; the extra zero row/column removes branch
/// special-cases in queries.
#[derive(Debug, Clone)]
pub struct SummedAreaTable {
    prefix: Vec<f64>,
    rows: usize,
    cols: usize,
}

impl SummedAreaTable {
    /// Builds a table from row-major per-cell values; `values.len()` must be
    /// `rows * cols`.
    pub fn new(rows: usize, cols: usize, values: &[f64]) -> Self {
        assert_eq!(
            values.len(),
            rows * cols,
            "value slice must match grid shape"
        );
        let stride = cols + 1;
        let mut prefix = vec![0.0f64; (rows + 1) * stride];
        for r in 0..rows {
            let mut row_sum = 0.0;
            for c in 0..cols {
                row_sum += values[r * cols + c];
                prefix[(r + 1) * stride + (c + 1)] = prefix[r * stride + (c + 1)] + row_sum;
            }
        }
        Self { prefix, rows, cols }
    }

    /// Builds a table sized for `grid` from row-major per-cell values.
    pub fn for_grid(grid: &Grid, values: &[f64]) -> Self {
        Self::new(grid.rows(), grid.cols(), values)
    }

    /// Grid shape the table covers.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Sum over a half-open cell rectangle. Empty rectangles sum to zero.
    ///
    /// # Panics
    /// Panics (debug assertions) when the rectangle exceeds the table shape.
    #[inline]
    pub fn sum(&self, rect: &CellRect) -> f64 {
        if rect.is_empty() {
            return 0.0;
        }
        debug_assert!(rect.row_end <= self.rows && rect.col_end <= self.cols);
        let stride = self.cols + 1;
        let a = self.prefix[rect.row_end * stride + rect.col_end];
        let b = self.prefix[rect.row_start * stride + rect.col_end];
        let c = self.prefix[rect.row_end * stride + rect.col_start];
        let d = self.prefix[rect.row_start * stride + rect.col_start];
        a - b - c + d
    }

    /// Total sum over the full table.
    pub fn total(&self) -> f64 {
        self.sum(&CellRect::new(0, self.rows, 0, self.cols))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn naive_sum(rows: usize, cols: usize, values: &[f64], rect: &CellRect) -> f64 {
        let _ = rows;
        rect.cells().map(|(r, c)| values[r * cols + c]).sum()
    }

    #[test]
    fn small_known_case() {
        // 2x3 grid:
        // 1 2 3
        // 4 5 6
        let v = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
        let sat = SummedAreaTable::new(2, 3, &v);
        assert_eq!(sat.total(), 21.0);
        assert_eq!(sat.sum(&CellRect::new(0, 1, 0, 3)), 6.0);
        assert_eq!(sat.sum(&CellRect::new(1, 2, 0, 3)), 15.0);
        assert_eq!(sat.sum(&CellRect::new(0, 2, 1, 2)), 7.0);
        assert_eq!(sat.sum(&CellRect::new(1, 2, 2, 3)), 6.0);
    }

    #[test]
    fn empty_rect_sums_to_zero() {
        let v = [1.0; 9];
        let sat = SummedAreaTable::new(3, 3, &v);
        assert_eq!(sat.sum(&CellRect::new(1, 1, 0, 3)), 0.0);
        assert_eq!(sat.sum(&CellRect::new(0, 3, 2, 2)), 0.0);
    }

    #[test]
    #[should_panic(expected = "value slice must match grid shape")]
    fn mismatched_shape_panics() {
        let _ = SummedAreaTable::new(2, 2, &[1.0, 2.0, 3.0]);
    }

    #[test]
    fn split_sides_sum_to_parent() {
        let v: Vec<f64> = (0..64).map(|i| (i as f64).sin()).collect();
        let sat = SummedAreaTable::new(8, 8, &v);
        let parent = CellRect::new(1, 7, 2, 8);
        for k in 1..parent.num_rows() {
            let (lo, hi) = parent.split_at(crate::cell_rect::Axis::Row, k).unwrap();
            let s = sat.sum(&lo) + sat.sum(&hi);
            assert!((s - sat.sum(&parent)).abs() < 1e-9);
        }
    }

    proptest! {
        #[test]
        fn matches_naive_on_random_grids(
            rows in 1usize..12,
            cols in 1usize..12,
            seed in any::<u64>(),
        ) {
            use rand::{RngExt, SeedableRng};
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let values: Vec<f64> =
                (0..rows * cols).map(|_| rng.random_range(-10.0..10.0)).collect();
            let sat = SummedAreaTable::new(rows, cols, &values);
            // Probe a handful of random sub-rectangles.
            for _ in 0..8 {
                let r0 = rng.random_range(0..rows);
                let r1 = rng.random_range(r0..=rows);
                let c0 = rng.random_range(0..cols);
                let c1 = rng.random_range(c0..=cols);
                let rect = CellRect::new(r0, r1, c0, c1);
                let expect = naive_sum(rows, cols, &values, &rect);
                prop_assert!((sat.sum(&rect) - expect).abs() < 1e-8);
            }
        }
    }
}
