//! Spatial quality metrics for partitions.
//!
//! The paper (§1) notes that spatial indexes partition "according to
//! varying criteria, such as area, perimeter, data point count" and that a
//! fair index should still preserve "the useful spatial properties of
//! indexing structures (e.g., fine-level clustering)". This module
//! quantifies those properties so fairness gains can be weighed against
//! spatial quality: per-region area/perimeter/compactness and the
//! population balance of a districting.

use crate::error::GeoError;
use crate::grid::Grid;
use crate::partition::Partition;
use serde::{Deserialize, Serialize};

/// Spatial quality of one region.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RegionShape {
    /// Number of grid cells.
    pub cells: usize,
    /// Area in map units.
    pub area: f64,
    /// Perimeter in map units (outer boundary, counting internal partition
    /// boundaries once).
    pub perimeter: f64,
    /// Isoperimetric compactness `4π·area / perimeter²` (1 for a disc,
    /// `π/4 ≈ 0.785` for a square; long slivers approach 0).
    pub compactness: f64,
}

/// Computes the shape metrics of every region of a partition.
///
/// Perimeter is measured by counting cell edges that face a different
/// region (or the map boundary), so it is exact for the rectilinear
/// geometry of grid partitions.
pub fn region_shapes(grid: &Grid, partition: &Partition) -> Result<Vec<RegionShape>, GeoError> {
    let (rows, cols) = partition.grid_shape();
    if rows != grid.rows() || cols != grid.cols() {
        return Err(GeoError::EmptyGrid {
            rows: grid.rows(),
            cols: grid.cols(),
        });
    }
    let cw = grid.cell_width();
    let ch = grid.cell_height();
    let k = partition.num_regions();
    let mut cells = vec![0usize; k];
    let mut perimeter = vec![0.0f64; k];

    for cell in grid.cells() {
        let r = partition.region_of(cell);
        cells[r] += 1;
        let (row, col) = grid.row_col(cell);
        // West/east edges have length ch, north/south edges length cw.
        let neighbors: [(Option<(usize, usize)>, f64); 4] = [
            (row.checked_sub(1).map(|rr| (rr, col)), cw),
            ((row + 1 < rows).then_some((row + 1, col)), cw),
            (col.checked_sub(1).map(|cc| (row, cc)), ch),
            ((col + 1 < cols).then_some((row, col + 1)), ch),
        ];
        for (n, edge) in neighbors {
            let foreign = match n {
                None => true, // map boundary
                Some((nr, nc)) => partition.region_of(grid.cell_id(nr, nc)) != r,
            };
            if foreign {
                perimeter[r] += edge;
            }
        }
    }

    Ok((0..k)
        .map(|r| {
            let area = cells[r] as f64 * cw * ch;
            let p = perimeter[r];
            RegionShape {
                cells: cells[r],
                area,
                perimeter: p,
                compactness: if p > 0.0 {
                    4.0 * std::f64::consts::PI * area / (p * p)
                } else {
                    0.0
                },
            }
        })
        .collect())
}

/// Population-balance summary of a districting.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BalanceSummary {
    /// Number of regions with at least one resident.
    pub occupied: usize,
    /// Smallest / largest region population.
    pub min_population: usize,
    /// Largest region population.
    pub max_population: usize,
    /// Coefficient of variation of occupied-region populations
    /// (std/mean; 0 = perfectly balanced).
    pub population_cv: f64,
    /// Mean compactness of occupied regions.
    pub mean_compactness: f64,
}

/// Summarizes balance and compactness given per-region populations.
pub fn balance_summary(
    shapes: &[RegionShape],
    populations: &[usize],
) -> Result<BalanceSummary, GeoError> {
    if shapes.len() != populations.len() {
        return Err(GeoError::UnknownRegion {
            region: shapes.len().min(populations.len()),
        });
    }
    let occupied: Vec<usize> = (0..shapes.len()).filter(|&r| populations[r] > 0).collect();
    if occupied.is_empty() {
        return Ok(BalanceSummary {
            occupied: 0,
            min_population: 0,
            max_population: 0,
            population_cv: 0.0,
            mean_compactness: 0.0,
        });
    }
    let pops: Vec<f64> = occupied.iter().map(|&r| populations[r] as f64).collect();
    let n = pops.len() as f64;
    let mean = pops.iter().sum::<f64>() / n;
    let var = pops.iter().map(|p| (p - mean) * (p - mean)).sum::<f64>() / n;
    let mean_compactness = occupied.iter().map(|&r| shapes[r].compactness).sum::<f64>() / n;
    Ok(BalanceSummary {
        occupied: occupied.len(),
        min_population: occupied.iter().map(|&r| populations[r]).min().unwrap_or(0),
        max_population: occupied.iter().map(|&r| populations[r]).max().unwrap_or(0),
        population_cv: if mean > 0.0 { var.sqrt() / mean } else { 0.0 },
        mean_compactness,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_grid_single_region() {
        let g = Grid::unit(4).unwrap();
        let p = Partition::single(&g);
        let shapes = region_shapes(&g, &p).unwrap();
        assert_eq!(shapes.len(), 1);
        assert_eq!(shapes[0].cells, 16);
        assert!((shapes[0].area - 1.0).abs() < 1e-12);
        assert!((shapes[0].perimeter - 4.0).abs() < 1e-12);
        // Unit square compactness = 4π/16 = π/4.
        assert!((shapes[0].compactness - std::f64::consts::PI / 4.0).abs() < 1e-12);
    }

    #[test]
    fn halves_have_expected_perimeter() {
        let g = Grid::unit(4).unwrap();
        let p = Partition::uniform(&g, 2, 1).unwrap();
        let shapes = region_shapes(&g, &p).unwrap();
        for s in &shapes {
            assert_eq!(s.cells, 8);
            assert!((s.area - 0.5).abs() < 1e-12);
            // A 1 x 0.5 rectangle: perimeter 3 (internal edge counted once
            // per region).
            assert!((s.perimeter - 3.0).abs() < 1e-12);
        }
    }

    #[test]
    fn slivers_are_less_compact_than_squares() {
        let g = Grid::unit(8).unwrap();
        let quadrants = Partition::uniform(&g, 2, 2).unwrap();
        let strips = Partition::uniform(&g, 8, 1).unwrap();
        let qc = region_shapes(&g, &quadrants).unwrap()[0].compactness;
        let sc = region_shapes(&g, &strips).unwrap()[0].compactness;
        assert!(qc > sc, "square {qc} should beat strip {sc}");
    }

    #[test]
    fn perimeters_tile_consistently() {
        // Sum of perimeters = map boundary + 2x internal boundary length;
        // for 2x2 quadrants of the unit square: 4 + 2*2 = 8.
        let g = Grid::unit(4).unwrap();
        let p = Partition::uniform(&g, 2, 2).unwrap();
        let total: f64 = region_shapes(&g, &p)
            .unwrap()
            .iter()
            .map(|s| s.perimeter)
            .sum();
        assert!((total - 8.0).abs() < 1e-12);
    }

    #[test]
    fn balance_summary_statistics() {
        let g = Grid::unit(4).unwrap();
        let p = Partition::uniform(&g, 2, 2).unwrap();
        let shapes = region_shapes(&g, &p).unwrap();
        let summary = balance_summary(&shapes, &[10, 10, 10, 0]).unwrap();
        assert_eq!(summary.occupied, 3);
        assert_eq!(summary.min_population, 10);
        assert_eq!(summary.max_population, 10);
        assert!(summary.population_cv.abs() < 1e-12);
        assert!(balance_summary(&shapes, &[1, 2]).is_err());
    }

    #[test]
    fn empty_population_summary_is_zeroed() {
        let g = Grid::unit(2).unwrap();
        let p = Partition::single(&g);
        let shapes = region_shapes(&g, &p).unwrap();
        let summary = balance_summary(&shapes, &[0]).unwrap();
        assert_eq!(summary.occupied, 0);
        assert_eq!(summary.population_cv, 0.0);
    }

    #[test]
    fn shape_mismatch_rejected() {
        let g = Grid::unit(4).unwrap();
        let other = Grid::unit(5).unwrap();
        let p = Partition::single(&g);
        assert!(region_shapes(&other, &p).is_err());
    }
}
