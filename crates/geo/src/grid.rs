//! The `U × V` base grid overlaid on the map (paper §2.1).
//!
//! The paper assumes "a `U × V` grid overlaid on the map ... selected such
//! that its resolution captures adequate spatial accuracy". Rows index the
//! `y` axis (northing) and columns the `x` axis (easting); cells are stored
//! row-major.

use crate::cell_rect::CellRect;
use crate::error::GeoError;
use crate::point::Point;
use crate::rect::Rect;
use serde::{Deserialize, Serialize};

/// Flat, row-major index of a grid cell: `cell = row * cols + col`.
pub type CellId = usize;

/// A fixed-resolution rectangular grid over a map rectangle.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Grid {
    bounds: Rect,
    rows: usize,
    cols: usize,
}

impl Grid {
    /// Creates a grid with `rows × cols` cells over `bounds`.
    pub fn new(bounds: Rect, rows: usize, cols: usize) -> Result<Self, GeoError> {
        if rows == 0 || cols == 0 {
            return Err(GeoError::EmptyGrid { rows, cols });
        }
        Ok(Self { bounds, rows, cols })
    }

    /// A `side × side` grid over the unit square — the workspace default
    /// (the experiments use 64×64).
    pub fn unit(side: usize) -> Result<Self, GeoError> {
        Self::new(Rect::unit(), side, side)
    }

    /// Map bounds covered by the grid.
    #[inline]
    pub fn bounds(&self) -> &Rect {
        &self.bounds
    }

    /// Number of rows (`U` in the paper).
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns (`V` in the paper).
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Total number of cells.
    #[inline]
    pub fn len(&self) -> usize {
        self.rows * self.cols
    }

    /// `true` when the grid has no cells. Construction forbids this, so it
    /// always returns `false`; provided for API completeness.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Cell width in map units.
    #[inline]
    pub fn cell_width(&self) -> f64 {
        self.bounds.width() / self.cols as f64
    }

    /// Cell height in map units.
    #[inline]
    pub fn cell_height(&self) -> f64 {
        self.bounds.height() / self.rows as f64
    }

    /// Converts `(row, col)` to a flat [`CellId`].
    #[inline]
    pub fn cell_id(&self, row: usize, col: usize) -> CellId {
        debug_assert!(row < self.rows && col < self.cols);
        row * self.cols + col
    }

    /// Converts a flat [`CellId`] back to `(row, col)`.
    #[inline]
    pub fn row_col(&self, cell: CellId) -> (usize, usize) {
        debug_assert!(cell < self.len());
        (cell / self.cols, cell % self.cols)
    }

    /// Locates the cell containing `p`. Points on shared edges are assigned
    /// to the north/east cell; points on the outer max edges are clamped
    /// into the last row/column so the grid covers the *closed* bounds.
    pub fn locate(&self, p: &Point) -> Result<CellId, GeoError> {
        match self.cell_of(p) {
            Some((row, col)) => Ok(self.cell_id(row, col)),
            None => Err(GeoError::PointOutOfBounds { point: (p.x, p.y) }),
        }
    }

    /// Continuous-coordinate → cell mapping: the `(row, col)` of the cell
    /// containing `p`, or `None` when `p` is non-finite or outside the
    /// closed bounds.
    ///
    /// Boundary semantics match [`Grid::locate`] exactly (it is implemented
    /// on top of this): a point on a shared interior edge belongs to the
    /// north/east cell, and points on the outer max edges are clamped into
    /// the last row/column.
    pub fn cell_of(&self, p: &Point) -> Option<(usize, usize)> {
        if !p.is_finite() || !self.bounds.contains(p) {
            return None;
        }
        let fx = (p.x - self.bounds.min_x) / self.cell_width();
        let fy = (p.y - self.bounds.min_y) / self.cell_height();
        let col = (fx as usize).min(self.cols - 1);
        let row = (fy as usize).min(self.rows - 1);
        Some((row, col))
    }

    /// Centroid of a cell in map coordinates.
    pub fn centroid(&self, cell: CellId) -> Result<Point, GeoError> {
        self.check_cell(cell)?;
        let (row, col) = self.row_col(cell);
        Ok(Point::new(
            self.bounds.min_x + (col as f64 + 0.5) * self.cell_width(),
            self.bounds.min_y + (row as f64 + 0.5) * self.cell_height(),
        ))
    }

    /// Map rectangle covered by a cell.
    pub fn cell_bounds(&self, cell: CellId) -> Result<Rect, GeoError> {
        self.check_cell(cell)?;
        let (row, col) = self.row_col(cell);
        Rect::new(
            self.bounds.min_x + col as f64 * self.cell_width(),
            self.bounds.min_y + row as f64 * self.cell_height(),
            self.bounds.min_x + (col + 1) as f64 * self.cell_width(),
            self.bounds.min_y + (row + 1) as f64 * self.cell_height(),
        )
    }

    /// Map rectangle covered by a block of cells.
    pub fn cell_rect_bounds(&self, rect: &CellRect) -> Result<Rect, GeoError> {
        if rect.is_empty() {
            return Err(GeoError::EmptyCellRect);
        }
        Rect::new(
            self.bounds.min_x + rect.col_start as f64 * self.cell_width(),
            self.bounds.min_y + rect.row_start as f64 * self.cell_height(),
            self.bounds.min_x + rect.col_end as f64 * self.cell_width(),
            self.bounds.min_y + rect.row_end as f64 * self.cell_height(),
        )
    }

    /// The [`CellRect`] covering the entire grid — the KD-tree root region.
    pub fn full_rect(&self) -> CellRect {
        CellRect::new(0, self.rows, 0, self.cols)
    }

    /// Validates a cell id.
    pub fn check_cell(&self, cell: CellId) -> Result<(), GeoError> {
        if cell >= self.len() {
            return Err(GeoError::CellOutOfBounds {
                cell,
                len: self.len(),
            });
        }
        Ok(())
    }

    /// Iterates over all cell ids in row-major order.
    pub fn cells(&self) -> impl Iterator<Item = CellId> {
        0..self.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid4() -> Grid {
        Grid::unit(4).unwrap()
    }

    #[test]
    fn construction_rejects_zero_dims() {
        assert!(Grid::new(Rect::unit(), 0, 4).is_err());
        assert!(Grid::new(Rect::unit(), 4, 0).is_err());
    }

    #[test]
    fn id_round_trip() {
        let g = Grid::new(Rect::unit(), 3, 5).unwrap();
        for row in 0..3 {
            for col in 0..5 {
                let id = g.cell_id(row, col);
                assert_eq!(g.row_col(id), (row, col));
            }
        }
        assert_eq!(g.len(), 15);
    }

    #[test]
    fn locate_center_of_each_cell() {
        let g = grid4();
        for cell in g.cells() {
            let c = g.centroid(cell).unwrap();
            assert_eq!(g.locate(&c).unwrap(), cell);
        }
    }

    #[test]
    fn locate_handles_max_edges() {
        let g = grid4();
        // North-east corner belongs to the last cell, not out of bounds.
        assert_eq!(g.locate(&Point::new(1.0, 1.0)).unwrap(), g.len() - 1);
        assert_eq!(g.locate(&Point::new(0.0, 0.0)).unwrap(), 0);
    }

    #[test]
    fn locate_rejects_outside_and_nan() {
        let g = grid4();
        assert!(g.locate(&Point::new(1.5, 0.5)).is_err());
        assert!(g.locate(&Point::new(f64::NAN, 0.5)).is_err());
    }

    #[test]
    fn cell_of_edges_and_corners() {
        // Non-unit bounds to exercise the offset/scale arithmetic.
        let g = Grid::new(Rect::new(-2.0, 1.0, 6.0, 5.0).unwrap(), 4, 4).unwrap();
        // All four corners land in their corner cells (max edges clamp).
        assert_eq!(g.cell_of(&Point::new(-2.0, 1.0)), Some((0, 0)));
        assert_eq!(g.cell_of(&Point::new(6.0, 1.0)), Some((0, 3)));
        assert_eq!(g.cell_of(&Point::new(-2.0, 5.0)), Some((3, 0)));
        assert_eq!(g.cell_of(&Point::new(6.0, 5.0)), Some((3, 3)));
        // A point on a shared interior edge belongs to the north/east cell.
        assert_eq!(g.cell_of(&Point::new(0.0, 2.0)), Some((1, 1)));
        // Points on the outer max edges clamp into the last row/column.
        assert_eq!(g.cell_of(&Point::new(6.0, 3.5)), Some((2, 3)));
        assert_eq!(g.cell_of(&Point::new(1.0, 5.0)), Some((3, 1)));
        // Outside or non-finite points map to no cell.
        assert_eq!(g.cell_of(&Point::new(6.0001, 3.0)), None);
        assert_eq!(g.cell_of(&Point::new(0.0, 0.9999)), None);
        assert_eq!(g.cell_of(&Point::new(f64::NAN, 3.0)), None);
        assert_eq!(g.cell_of(&Point::new(0.0, f64::INFINITY)), None);
    }

    #[test]
    fn cell_of_agrees_with_locate() {
        let g = Grid::new(Rect::new(0.25, 0.5, 1.75, 3.5).unwrap(), 5, 3).unwrap();
        for i in 0..=20 {
            for j in 0..=20 {
                let p = Point::new(
                    0.25 + 1.5 * (i as f64 / 20.0),
                    0.5 + 3.0 * (j as f64 / 20.0),
                );
                let (row, col) = g.cell_of(&p).unwrap();
                assert_eq!(g.locate(&p).unwrap(), g.cell_id(row, col));
            }
        }
    }

    #[test]
    fn cell_bounds_partition_the_map() {
        let g = grid4();
        let total: f64 = g.cells().map(|c| g.cell_bounds(c).unwrap().area()).sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn centroid_is_inside_cell_bounds() {
        let g = Grid::new(Rect::new(-2.0, 3.0, 6.0, 11.0).unwrap(), 7, 3).unwrap();
        for cell in g.cells() {
            let b = g.cell_bounds(cell).unwrap();
            assert!(b.contains(&g.centroid(cell).unwrap()));
        }
    }

    #[test]
    fn full_rect_covers_grid() {
        let g = grid4();
        let r = g.full_rect();
        assert_eq!(r.num_cells(), g.len());
        let bounds = g.cell_rect_bounds(&r).unwrap();
        assert_eq!(&bounds, g.bounds());
    }

    #[test]
    fn check_cell_bounds() {
        let g = grid4();
        assert!(g.check_cell(15).is_ok());
        assert!(g.check_cell(16).is_err());
    }
}
