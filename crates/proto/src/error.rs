//! Protocol-level failures: what can go wrong *before* a request
//! reaches a service (and after a response leaves one).

use std::fmt;

/// A wire-level failure while encoding, decoding or validating a
/// protocol message.
///
/// These are the transport's errors — a request that fails here never
/// reaches dispatch. Failures *inside* dispatch (out-of-bounds points,
/// rejected rebuild specs) are answered as [`crate::Response::Error`]
/// with a structured [`crate::ErrorBody`] instead.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProtoError {
    /// The payload is not valid JSON, or its shape does not match the
    /// envelope/message types.
    Json(String),
    /// The envelope carries a protocol version this build cannot speak.
    UnsupportedVersion {
        /// Version tag found in the envelope.
        got: u32,
        /// Version this build speaks ([`crate::PROTO_VERSION`]).
        expected: u32,
    },
    /// The message decoded but fails semantic validation (non-finite
    /// coordinates, inverted rectangles, malformed rebuild specs, …).
    InvalidRequest(String),
}

impl fmt::Display for ProtoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtoError::Json(msg) => write!(f, "malformed protocol message: {msg}"),
            ProtoError::UnsupportedVersion { got, expected } => write!(
                f,
                "unsupported protocol version {got} (this build speaks {expected})"
            ),
            ProtoError::InvalidRequest(msg) => write!(f, "invalid request: {msg}"),
        }
    }
}

impl std::error::Error for ProtoError {}

impl From<serde_json::Error> for ProtoError {
    fn from(e: serde_json::Error) -> Self {
        ProtoError::Json(e.to_string())
    }
}

impl From<serde::Error> for ProtoError {
    fn from(e: serde::Error) -> Self {
        ProtoError::Json(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_informative() {
        let e = ProtoError::UnsupportedVersion {
            got: 9,
            expected: 1,
        };
        assert!(e.to_string().contains("version 9"));
        let e = ProtoError::InvalidRequest("x is NaN".into());
        assert!(e.to_string().contains("NaN"));
    }
}
