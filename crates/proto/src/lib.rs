//! # fsi-proto — the typed query protocol of the serving layer
//!
//! Every serving transport — the in-process [`QueryService`], the text
//! REPL, the HTTP listener, and whatever comes next (gRPC, multi-machine
//! shard fan-out) — speaks the one request/response vocabulary defined
//! here, instead of each transport parsing and formatting its own
//! stringly-typed queries.
//!
//! * [`Request`] — what a client can ask: point lookups
//!   ([`Request::Lookup`]), batched lookups ([`Request::LookupBatch`]),
//!   map-space range queries ([`Request::RangeQuery`]), service
//!   statistics ([`Request::Stats`]) and spec-driven index rebuilds
//!   ([`Request::Rebuild`]).
//! * [`Response`] — what the service answers, including the structured
//!   [`ErrorBody`] every failure is reported through.
//! * [`RequestEnvelope`] / [`ResponseEnvelope`] — the versioned wire
//!   frames. [`decode_request`] validates the version *and* the payload
//!   (finite coordinates, ordered rectangles, well-formed specs) before
//!   a request ever reaches a service, so transports never dispatch
//!   garbage.
//!
//! The wire format is externally-tagged JSON (serde's default), e.g.:
//!
//! ```text
//! {"v":1,"body":{"Lookup":{"x":0.31,"y":0.72}}}
//! {"v":1,"body":{"Decision":{"decision":{"leaf_id":14,"group":14,
//!   "raw_score":0.6180339887498949,"calibrated_score":0.6456389}}}}
//! ```
//!
//! Floating-point fields use shortest-round-trip formatting, so a
//! decision that crosses the wire compares **bit-identical** to one
//! produced in-process — the differential transport tests depend on it.
//!
//! [`QueryService`]: https://docs.rs/fsi-serve

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod error;
pub mod message;
pub mod wire;

pub use error::ProtoError;
pub use message::{
    decode_request, decode_response, encode_request, encode_response, Request, RequestEnvelope,
    Response, ResponseEnvelope, PROTO_VERSION,
};
pub use wire::{
    CacheStatsBody, DecisionBody, ErrorBody, ErrorCode, ErrorCountBody, HealthBody, HttpObsBody,
    IngestBody, IngestObsBody, MetricsBody, PreparedBody, RebuildObsBody, RebuildReport,
    ReplicaHealthBody, RequestKindMetrics, ShardHealthBody, ShardObsBody, ShardStatsBody,
    StatsBody, WirePoint, WireRect,
};
