//! The protocol's data bodies: plain serde-round-trippable structs with
//! no behavior beyond validation, shared by every transport.

use crate::error::ProtoError;
use fsi_obs::HistogramSnapshot;
use fsi_pipeline::PipelineSpec;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::time::Duration;

/// A continuous map point on the wire.
///
/// Deliberately its own type (rather than reusing `fsi_geo::Point`) so
/// the wire format is frozen by this crate alone; services convert at
/// the boundary.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WirePoint {
    /// Map-space x coordinate.
    pub x: f64,
    /// Map-space y coordinate.
    pub y: f64,
}

impl WirePoint {
    /// Creates a wire point.
    pub fn new(x: f64, y: f64) -> Self {
        Self { x, y }
    }

    /// Rejects non-finite coordinates.
    pub fn validate(&self) -> Result<(), ProtoError> {
        if !(self.x.is_finite() && self.y.is_finite()) {
            return Err(ProtoError::InvalidRequest(format!(
                "point ({}, {}) has non-finite coordinates",
                self.x, self.y
            )));
        }
        Ok(())
    }
}

/// A closed axis-aligned map rectangle on the wire.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WireRect {
    /// Low x bound.
    pub min_x: f64,
    /// Low y bound.
    pub min_y: f64,
    /// High x bound (must be ≥ `min_x`).
    pub max_x: f64,
    /// High y bound (must be ≥ `min_y`).
    pub max_y: f64,
}

impl WireRect {
    /// Creates a wire rectangle.
    pub fn new(min_x: f64, min_y: f64, max_x: f64, max_y: f64) -> Self {
        Self {
            min_x,
            min_y,
            max_x,
            max_y,
        }
    }

    /// Rejects non-finite bounds and non-positive extents — the same
    /// rule `fsi_geo::Rect::new` enforces, so a rectangle that decodes
    /// is always constructible by the service.
    pub fn validate(&self) -> Result<(), ProtoError> {
        let finite = [self.min_x, self.min_y, self.max_x, self.max_y]
            .iter()
            .all(|v| v.is_finite());
        if !finite {
            return Err(ProtoError::InvalidRequest(format!(
                "rectangle [{}, {}]x[{}, {}] has non-finite bounds",
                self.min_x, self.max_x, self.min_y, self.max_y
            )));
        }
        if self.min_x >= self.max_x || self.min_y >= self.max_y {
            return Err(ProtoError::InvalidRequest(format!(
                "rectangle [{}, {}]x[{}, {}] must have positive extent",
                self.min_x, self.max_x, self.min_y, self.max_y
            )));
        }
        Ok(())
    }
}

/// One ingested observation on the wire: where the point landed, the
/// cohort tag it arrived with, and its observed binary outcome.
///
/// Shared by [`crate::Request::IngestBatch`] and the optional ingest
/// delta a coordinator ships inside [`crate::Request::RebuildPrepare`]
/// so every shard retrains on the identical merged dataset.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct IngestBody {
    /// Map-space x coordinate.
    pub x: f64,
    /// Map-space y coordinate.
    pub y: f64,
    /// Opaque cohort tag, tracked per cell for drift detection.
    pub group: u32,
    /// Observed binary outcome for the served task.
    pub label: bool,
}

impl IngestBody {
    /// Creates an ingest record.
    pub fn new(x: f64, y: f64, group: u32, label: bool) -> Self {
        Self { x, y, group, label }
    }

    /// Rejects non-finite coordinates — the same rule as
    /// [`WirePoint::validate`].
    pub fn validate(&self) -> Result<(), ProtoError> {
        WirePoint::new(self.x, self.y).validate()
    }
}

/// One served decision on the wire — the protocol twin of
/// `fsi_serve::Decision`, field for field, so conversions are lossless
/// and serialized floats round-trip bit-identically.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DecisionBody {
    /// Leaf (= neighborhood) id the query point maps to.
    pub leaf_id: usize,
    /// Fairness group the decision is calibrated against.
    pub group: usize,
    /// The model's raw (uncalibrated) score.
    pub raw_score: f64,
    /// The locally calibrated score, clamped to `[0, 1]`.
    pub calibrated_score: f64,
}

/// Decision-cache counters inside a [`StatsBody`], present only when
/// the answering service runs with a cache configured.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheStatsBody {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that fell through to the index.
    pub misses: u64,
    /// Entries displaced by the capacity bound.
    pub evictions: u64,
    /// Live entries at snapshot time.
    pub entries: usize,
    /// Maximum entries the cache holds.
    pub capacity: usize,
}

impl CacheStatsBody {
    /// Fraction of lookups answered from the cache, in `[0, 1]`; `0.0`
    /// before any traffic.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// One shard's entry inside a [`StatsBody`], carrying where the shard
/// lives (backend kind + address) beside its index snapshot numbers.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ShardStatsBody {
    /// Backend kind: `"local"` (in-process index), `"http"` (remote
    /// shard behind a socket) or `"replicas"` (a failover replica set).
    pub kind: String,
    /// The remote shard's `host:port` address; `None` for local shards.
    pub addr: Option<String>,
    /// The shard's live snapshot generation.
    pub generation: u64,
    /// Leaves served by this shard's (possibly clipped) index.
    pub num_leaves: usize,
    /// Approximate heap footprint of this shard's index, in bytes.
    pub heap_bytes: usize,
    /// Compiled backend serving this shard (`"tree"` or `"cells"`).
    pub backend: String,
    /// `Some(true)` when the scatter-gather that produced this entry
    /// could not reach the shard — the response degrades to a per-shard
    /// marker instead of failing wholesale. Optional so envelopes
    /// encoded before graceful degradation existed still decode.
    pub unreachable: Option<bool>,
    /// The transport error that made the shard unreachable, when
    /// [`ShardStatsBody::unreachable`] is set.
    pub error: Option<String>,
}

/// Service statistics answered to [`crate::Request::Stats`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StatsBody {
    /// Number of shards behind the service.
    pub shards: usize,
    /// Per-shard snapshot generation, in shard order. Strictly monotone
    /// per shard across a client's Stats responses — hot swaps can only
    /// raise it.
    pub generations: Vec<u64>,
    /// Leaves (neighborhoods) in the live index.
    pub num_leaves: usize,
    /// Approximate heap footprint of one live index snapshot, in bytes.
    pub heap_bytes: usize,
    /// Compiled backend serving lookups (`"tree"` or `"cells"`).
    pub backend: String,
    /// Decision-cache counters, when the worker answering this request
    /// has a cache configured. Optional so v1 envelopes encoded before
    /// this field existed still decode.
    pub cache: Option<CacheStatsBody>,
    /// Per-shard breakdown with backend kind and address, populated by
    /// topology-aware coordinators. Optional so v1 envelopes encoded
    /// before this field existed still decode (same pattern as
    /// `cache`).
    pub per_shard: Option<Vec<ShardStatsBody>>,
    /// The answering worker's local telemetry snapshot, when the
    /// service runs with metrics enabled. Optional so v1/v2 envelopes
    /// encoded before this field existed still decode (same pattern as
    /// `cache` and `per_shard`).
    pub metrics: Option<Box<MetricsBody>>,
    /// Per-shard health (breaker state, replica counters), populated by
    /// topology-aware coordinators with resilience enabled. Optional so
    /// envelopes encoded before `fsi-resil` existed still decode.
    pub health: Option<Box<HealthBody>>,
}

/// Health of one replica inside a [`ShardHealthBody`] — its circuit
/// breaker state plus the retry/hedge counters the resilience layer
/// maintains for it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReplicaHealthBody {
    /// Replica index within its replica set.
    pub replica: usize,
    /// Backend kind of this replica (`"local"` or `"http"`).
    pub kind: String,
    /// The replica's `host:port` address; `None` for local replicas.
    pub addr: Option<String>,
    /// Circuit breaker state: `"closed"`, `"open"` or `"half_open"`.
    pub state: String,
    /// Consecutive failures observed since the last success.
    pub consecutive_failures: u64,
    /// Attempts dispatched to this replica (first tries + retries +
    /// hedges).
    pub attempts: u64,
    /// Attempts that failed with a transport-level (`internal`) error.
    pub failures: u64,
    /// Attempts that were retries of a failed earlier attempt.
    pub retries: u64,
    /// Hedged (speculative duplicate) attempts sent to this replica.
    pub hedges: u64,
    /// Hedged attempts that won the race against the primary attempt.
    pub hedge_wins: u64,
    /// Breaker transitions into `open` (closed/half-open → open).
    pub opens: u64,
    /// Breaker transitions into `half_open` (open → probing).
    pub half_opens: u64,
    /// Breaker re-closes (half-open probe succeeded).
    pub closes: u64,
    /// Sampled per-attempt dispatch latency, in nanoseconds.
    pub latency: HistogramSnapshot,
}

/// Health of one coordinator slot inside a [`HealthBody`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ShardHealthBody {
    /// Shard index in topology order.
    pub shard: usize,
    /// Backend kind: `"local"`, `"http"` or `"replicas"`.
    pub kind: String,
    /// The shard's `host:port` address; `None` for local shards,
    /// comma-joined member addresses for replica sets.
    pub addr: Option<String>,
    /// Aggregate state: `"up"` (all replicas closed), `"degraded"`
    /// (some replica open/half-open but at least one closed) or
    /// `"down"` (no closed replica). Plain backends without a
    /// resilience layer always report `"up"`.
    pub state: String,
    /// Per-replica breakdown; empty for plain (non-replicated) shards.
    pub replicas: Vec<ReplicaHealthBody>,
}

/// The coordinator's view of fleet health — the body of
/// [`crate::Response::Health`], also attached to [`StatsBody::health`]
/// so a plain `stats` round-trip surfaces it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HealthBody {
    /// Per-shard health, in topology order.
    pub shards: Vec<ShardHealthBody>,
}

impl HealthBody {
    /// `true` when every shard reports `"up"`.
    pub fn all_up(&self) -> bool {
        self.shards.iter().all(|s| s.state == "up")
    }
}

/// Traffic counters for one request kind inside a [`MetricsBody`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RequestKindMetrics {
    /// Request kind in snake case (`"lookup"`, `"lookup_batch"`, …).
    pub kind: String,
    /// Requests of this kind dispatched so far.
    pub count: u64,
    /// Dispatch latency in nanoseconds. Point lookups may be *sampled*
    /// (see the service's sampling knob), so `latency.count() ≤ count`;
    /// every other kind is always timed.
    pub latency: HistogramSnapshot,
}

/// One error-code tally inside a [`MetricsBody`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ErrorCountBody {
    /// The failure category.
    pub code: ErrorCode,
    /// Error responses answered with this code.
    pub count: u64,
}

/// Coordinator-side telemetry for one shard inside a [`MetricsBody`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ShardObsBody {
    /// Shard index in topology order.
    pub shard: usize,
    /// Backend kind: `"local"` or `"http"`.
    pub kind: String,
    /// The remote shard's `host:port` address; `None` for local shards.
    pub addr: Option<String>,
    /// Requests the coordinator forwarded to this shard.
    pub requests: u64,
    /// Forwarded requests that came back as `internal` transport
    /// errors — the raw feed for a future health/retry policy.
    pub failures: u64,
    /// Transport reconnect attempts (remote backends only).
    pub reconnects: u64,
    /// Coordinator-observed round-trip latency, in nanoseconds.
    pub round_trip: HistogramSnapshot,
    /// The shard's own scraped snapshot, when the scatter-gather that
    /// produced this body reached it. Boxed and optional: local shards
    /// have no recorder of their own and older peers omit the field.
    pub remote: Option<Box<MetricsBody>>,
    /// Per-replica health counters, when this slot is a replica set.
    /// Optional so envelopes encoded before `fsi-resil` existed still
    /// decode.
    pub replicas: Option<Vec<ReplicaHealthBody>>,
}

/// Two-phase rebuild timings inside a [`MetricsBody`], one histogram
/// per phase, in nanoseconds per shard-phase.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RebuildObsBody {
    /// Prepare/stage durations (also records plain `Rebuild` builds).
    pub prepare: HistogramSnapshot,
    /// Commit/publish durations.
    pub commit: HistogramSnapshot,
    /// Abort durations.
    pub abort: HistogramSnapshot,
}

impl RebuildObsBody {
    /// All-empty timings.
    pub fn empty() -> Self {
        Self {
            prepare: HistogramSnapshot::empty(),
            commit: HistogramSnapshot::empty(),
            abort: HistogramSnapshot::empty(),
        }
    }
}

/// HTTP transport telemetry inside a [`MetricsBody`], attached by the
/// HTTP server in front of the service (absent on other transports).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct HttpObsBody {
    /// Connections accepted since start.
    pub connections: u64,
    /// Connections currently open.
    pub active: u64,
    /// HTTP requests handled (all methods and paths).
    pub requests: u64,
    /// Head + body read time per request, in nanoseconds.
    pub read: HistogramSnapshot,
    /// Decode + dispatch + encode time per request, in nanoseconds.
    pub handle: HistogramSnapshot,
    /// Response write time per request, in nanoseconds.
    pub write: HistogramSnapshot,
}

/// Streaming-ingestion telemetry inside a [`MetricsBody`], present when
/// the answering service has ingestion enabled.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IngestObsBody {
    /// Points accepted into the delta buffer since start.
    pub accepted: u64,
    /// Points rejected for falling outside the served grid.
    pub rejected: u64,
    /// Points currently buffered (the occupancy gauge maintenance
    /// triggers on).
    pub buffered: u64,
    /// The last measured maximum subtree drift score.
    pub drift_score: f64,
    /// End-to-end maintenance rebuild durations (drain + merge +
    /// retrain + two-phase publish), in nanoseconds.
    pub maintenance: HistogramSnapshot,
}

/// One worker-merged telemetry snapshot — the body of
/// [`crate::Response::Metrics`], scatter-gathered across shards by
/// topology-aware coordinators (each remote shard's own snapshot rides
/// in [`ShardObsBody::remote`]).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MetricsBody {
    /// Per-request-kind counts and latency, in dispatch order.
    pub requests: Vec<RequestKindMetrics>,
    /// Error responses tallied by code; codes never answered are
    /// omitted.
    pub errors: Vec<ErrorCountBody>,
    /// Requests that crossed the slow-query log threshold (0 when the
    /// log is off).
    pub slow_queries: u64,
    /// Highest snapshot generation observed at dispatch time.
    pub generation: u64,
    /// Decision-cache counters, when a cache is configured.
    pub cache: Option<CacheStatsBody>,
    /// Coordinator-side per-shard telemetry, in topology order.
    pub shards: Vec<ShardObsBody>,
    /// Two-phase rebuild timings.
    pub rebuild: RebuildObsBody,
    /// HTTP transport telemetry, when an HTTP server fronts the
    /// service.
    pub http: Option<HttpObsBody>,
    /// Streaming-ingestion telemetry, when ingestion is enabled.
    /// Optional so envelopes encoded before streaming ingestion
    /// existed still decode (same pattern as `cache` and `http`).
    pub ingest: Option<IngestObsBody>,
}

impl MetricsBody {
    /// An all-zero snapshot — what a backend without a recorder (plain
    /// local shard) answers.
    pub fn empty() -> Self {
        Self {
            requests: Vec::new(),
            errors: Vec::new(),
            slow_queries: 0,
            generation: 0,
            cache: None,
            shards: Vec::new(),
            rebuild: RebuildObsBody::empty(),
            http: None,
            ingest: None,
        }
    }

    /// Total requests across all kinds.
    pub fn total_requests(&self) -> u64 {
        self.requests.iter().map(|r| r.count).sum()
    }

    /// The count recorded for one request kind, 0 when absent.
    pub fn count_for(&self, kind: &str) -> u64 {
        self.requests
            .iter()
            .find(|r| r.kind == kind)
            .map_or(0, |r| r.count)
    }
}

/// What a finished rebuild did — the body of
/// [`crate::Response::Rebuilt`], also returned by the `fsi-serve`
/// rebuild APIs, so the wire protocol and the library reports share one
/// JSON representation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RebuildReport {
    /// The spec the new index was built from.
    pub spec: PipelineSpec,
    /// Generation the new snapshot serves at (on a sharded service: the
    /// highest generation across shards after the publish).
    pub generation: u64,
    /// Leaves in the new index.
    pub num_leaves: usize,
    /// ENCE of the retrained model over the full population.
    pub ence: f64,
    /// Wall-clock of partition construction inside the pipeline.
    pub build_time: Duration,
    /// End-to-end wall-clock: training + evaluation + compile + publish.
    pub total_time: Duration,
}

/// What phase one of a two-phase rebuild staged — the body of
/// [`crate::Response::Prepared`]: the index is built and held back,
/// waiting for a [`crate::Request::RebuildCommit`] to publish it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PreparedBody {
    /// Leaves in the staged (possibly clipped) index.
    pub num_leaves: usize,
    /// Approximate heap footprint of the staged index, in bytes.
    pub heap_bytes: usize,
    /// ENCE of the retrained model over the full population.
    pub ence: f64,
    /// Wall-clock of training + compile for the staged index.
    pub build_time: Duration,
}

/// Machine-readable failure category of an [`ErrorBody`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ErrorCode {
    /// The request could not be decoded (bad JSON or shape).
    MalformedRequest,
    /// The envelope's protocol version is not supported.
    UnsupportedVersion,
    /// A query point lies outside the served map bounds.
    OutOfBounds,
    /// A rebuild spec failed validation.
    InvalidSpec,
    /// The service was built without rebuild support.
    RebuildUnavailable,
    /// A rebuild commit arrived with no staged index to publish.
    NotPrepared,
    /// The service failed internally (training error, …).
    Internal,
}

impl fmt::Display for ErrorCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            ErrorCode::MalformedRequest => "malformed_request",
            ErrorCode::UnsupportedVersion => "unsupported_version",
            ErrorCode::OutOfBounds => "out_of_bounds",
            ErrorCode::InvalidSpec => "invalid_spec",
            ErrorCode::RebuildUnavailable => "rebuild_unavailable",
            ErrorCode::NotPrepared => "not_prepared",
            ErrorCode::Internal => "internal",
        };
        f.write_str(name)
    }
}

/// The structured error every transport reports failures through.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ErrorBody {
    /// Failure category.
    pub code: ErrorCode,
    /// Human-readable description.
    pub message: String,
}

impl ErrorBody {
    /// Creates an error body.
    pub fn new(code: ErrorCode, message: impl Into<String>) -> Self {
        Self {
            code,
            message: message.into(),
        }
    }
}

impl From<&ProtoError> for ErrorBody {
    /// The structured body a transport answers when decoding fails.
    fn from(e: &ProtoError) -> Self {
        let code = match e {
            ProtoError::Json(_) => ErrorCode::MalformedRequest,
            ProtoError::UnsupportedVersion { .. } => ErrorCode::UnsupportedVersion,
            ProtoError::InvalidRequest(_) => ErrorCode::MalformedRequest,
        };
        ErrorBody::new(code, e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn point_and_rect_validation() {
        assert!(WirePoint::new(0.5, 0.5).validate().is_ok());
        assert!(WirePoint::new(f64::NAN, 0.5).validate().is_err());
        assert!(WirePoint::new(0.5, f64::INFINITY).validate().is_err());
        assert!(WireRect::new(0.0, 0.0, 1.0, 1.0).validate().is_ok());
        // Zero-extent rectangles are rejected, exactly like Rect::new.
        assert!(WireRect::new(0.5, 0.5, 0.5, 0.5).validate().is_err());
        assert!(WireRect::new(0.9, 0.0, 0.1, 1.0).validate().is_err());
        assert!(WireRect::new(0.0, f64::NAN, 1.0, 1.0).validate().is_err());
    }

    #[test]
    fn decision_body_round_trips_bit_identically() {
        let d = DecisionBody {
            leaf_id: 1023,
            group: 7,
            raw_score: 0.1 + 0.2, // deliberately not representable exactly
            calibrated_score: f64::MIN_POSITIVE,
        };
        let json = serde_json::to_string(&d).unwrap();
        let back: DecisionBody = serde_json::from_str(&json).unwrap();
        assert_eq!(d.raw_score.to_bits(), back.raw_score.to_bits());
        assert_eq!(
            d.calibrated_score.to_bits(),
            back.calibrated_score.to_bits()
        );
        assert_eq!(d, back);
    }

    #[test]
    fn stats_body_decodes_old_wire_json_without_cache_fields() {
        // Captured from a pre-cache peer: the exact object shape v1
        // StatsBody serialized to before the `cache` field existed.
        let old_wire = r#"{
            "shards": 4,
            "generations": [3, 3, 2, 3],
            "num_leaves": 1024,
            "heap_bytes": 49152,
            "backend": "tree"
        }"#;
        let stats: StatsBody = serde_json::from_str(old_wire).unwrap();
        assert_eq!(stats.shards, 4);
        assert_eq!(stats.generations, vec![3, 3, 2, 3]);
        assert_eq!(stats.num_leaves, 1024);
        assert_eq!(stats.heap_bytes, 49152);
        assert_eq!(stats.backend, "tree");
        assert_eq!(stats.cache, None, "missing cache field must decode as None");
        assert_eq!(
            stats.per_shard, None,
            "missing per_shard field must decode as None"
        );
        assert_eq!(
            stats.metrics, None,
            "missing metrics field must decode as None"
        );
        assert_eq!(
            stats.health, None,
            "missing health field must decode as None"
        );
        // Truly required fields still fail loudly when absent.
        let truncated = r#"{"shards": 1, "generations": [1]}"#;
        let err = serde_json::from_str::<StatsBody>(truncated).unwrap_err();
        assert!(err.to_string().contains("missing field"), "{err}");
    }

    #[test]
    fn stats_body_with_cache_counters_round_trips() {
        let stats = StatsBody {
            shards: 1,
            generations: vec![7],
            num_leaves: 64,
            heap_bytes: 2048,
            backend: "cells".into(),
            cache: Some(CacheStatsBody {
                hits: 900,
                misses: 100,
                evictions: 12,
                entries: 64,
                capacity: 128,
            }),
            per_shard: None,
            metrics: None,
            health: None,
        };
        let json = serde_json::to_string(&stats).unwrap();
        let back: StatsBody = serde_json::from_str(&json).unwrap();
        assert_eq!(stats, back);
        let cache = back.cache.unwrap();
        assert!((cache.hit_rate() - 0.9).abs() < 1e-12);
        assert_eq!(
            CacheStatsBody::hit_rate(&CacheStatsBody {
                hits: 0,
                misses: 0,
                evictions: 0,
                entries: 0,
                capacity: 1,
            }),
            0.0
        );
    }

    #[test]
    fn stats_body_with_per_shard_entries_round_trips() {
        let stats = StatsBody {
            shards: 2,
            generations: vec![3, 3],
            num_leaves: 1024,
            heap_bytes: 49152,
            backend: "tree".into(),
            cache: None,
            per_shard: Some(vec![
                ShardStatsBody {
                    kind: "local".into(),
                    addr: None,
                    generation: 3,
                    num_leaves: 280,
                    heap_bytes: 14336,
                    backend: "tree".into(),
                    unreachable: None,
                    error: None,
                },
                ShardStatsBody {
                    kind: "http".into(),
                    addr: Some("127.0.0.1:7878".into()),
                    generation: 3,
                    num_leaves: 296,
                    heap_bytes: 15104,
                    backend: "tree".into(),
                    unreachable: Some(true),
                    error: Some("remote shard 127.0.0.1:7878: connection refused".into()),
                },
            ]),
            metrics: None,
            health: None,
        };
        let json = serde_json::to_string(&stats).unwrap();
        let back: StatsBody = serde_json::from_str(&json).unwrap();
        assert_eq!(stats, back);
        let shards = back.per_shard.unwrap();
        assert_eq!(shards[0].addr, None);
        assert_eq!(shards[0].unreachable, None);
        assert_eq!(shards[1].addr.as_deref(), Some("127.0.0.1:7878"));
        assert_eq!(shards[1].unreachable, Some(true));
    }

    #[test]
    fn shard_stats_body_decodes_old_wire_json_without_degradation_markers() {
        // Captured from a pre-resilience peer: per_shard entries never
        // carried unreachable/error markers.
        let old_wire = r#"{
            "kind": "http", "addr": "10.0.0.7:7878", "generation": 5,
            "num_leaves": 256, "heap_bytes": 12288, "backend": "tree"
        }"#;
        let shard: ShardStatsBody = serde_json::from_str(old_wire).unwrap();
        assert_eq!(shard.unreachable, None);
        assert_eq!(shard.error, None);
    }

    fn sample_replica_health(replica: usize, state: &str) -> ReplicaHealthBody {
        let h = fsi_obs::Histogram::new();
        h.record(48_000);
        h.record(52_000);
        ReplicaHealthBody {
            replica,
            kind: "http".into(),
            addr: Some(format!("127.0.0.1:{}", 7878 + replica)),
            state: state.into(),
            consecutive_failures: if state == "closed" { 0 } else { 5 },
            attempts: 2048,
            failures: 5,
            retries: 4,
            hedges: 12,
            hedge_wins: 3,
            opens: u64::from(state != "closed"),
            half_opens: 0,
            closes: 0,
            latency: h.snapshot(),
        }
    }

    #[test]
    fn health_body_round_trips_and_reports_aggregate_state() {
        let health = HealthBody {
            shards: vec![
                ShardHealthBody {
                    shard: 0,
                    kind: "local".into(),
                    addr: None,
                    state: "up".into(),
                    replicas: Vec::new(),
                },
                ShardHealthBody {
                    shard: 1,
                    kind: "replicas".into(),
                    addr: Some("127.0.0.1:7878,127.0.0.1:7879".into()),
                    state: "degraded".into(),
                    replicas: vec![
                        sample_replica_health(0, "closed"),
                        sample_replica_health(1, "open"),
                    ],
                },
            ],
        };
        assert!(!health.all_up());
        let json = serde_json::to_string(&health).unwrap();
        let back: HealthBody = serde_json::from_str(&json).unwrap();
        assert_eq!(health, back);
        assert_eq!(back.shards[1].replicas[1].state, "open");
        assert_eq!(back.shards[1].replicas[1].opens, 1);
        let all_up = HealthBody {
            shards: vec![ShardHealthBody {
                shard: 0,
                kind: "local".into(),
                addr: None,
                state: "up".into(),
                replicas: Vec::new(),
            }],
        };
        assert!(all_up.all_up());
    }

    #[test]
    fn stats_body_decodes_v2_wire_json_without_metrics_field() {
        // Captured from a pre-observability peer: v2 StatsBody with the
        // cache and per_shard blocks but no `metrics` field.
        let v2_wire = r#"{
            "shards": 2,
            "generations": [5, 5],
            "num_leaves": 512,
            "heap_bytes": 24576,
            "backend": "tree",
            "cache": {"hits": 10, "misses": 2, "evictions": 0, "entries": 8, "capacity": 64},
            "per_shard": [
                {"kind": "local", "addr": null, "generation": 5,
                 "num_leaves": 256, "heap_bytes": 12288, "backend": "tree"},
                {"kind": "http", "addr": "10.0.0.7:7878", "generation": 5,
                 "num_leaves": 256, "heap_bytes": 12288, "backend": "tree"}
            ]
        }"#;
        let stats: StatsBody = serde_json::from_str(v2_wire).unwrap();
        assert_eq!(stats.cache.unwrap().hits, 10);
        assert_eq!(stats.per_shard.unwrap().len(), 2);
        assert_eq!(
            stats.metrics, None,
            "v2 envelopes without metrics must decode as None"
        );
    }

    fn sample_metrics_body() -> MetricsBody {
        let hist = |values: &[u64]| {
            let h = fsi_obs::Histogram::new();
            for &v in values {
                h.record(v);
            }
            h.snapshot()
        };
        MetricsBody {
            requests: vec![
                RequestKindMetrics {
                    kind: "lookup".into(),
                    count: 4096,
                    latency: hist(&[57, 61, 122, 8_000]),
                },
                RequestKindMetrics {
                    kind: "stats".into(),
                    count: 3,
                    latency: hist(&[1_200, 1_800, 2_400]),
                },
            ],
            errors: vec![ErrorCountBody {
                code: ErrorCode::OutOfBounds,
                count: 2,
            }],
            slow_queries: 1,
            generation: 7,
            cache: Some(CacheStatsBody {
                hits: 900,
                misses: 100,
                evictions: 3,
                entries: 97,
                capacity: 128,
            }),
            shards: vec![
                ShardObsBody {
                    shard: 0,
                    kind: "local".into(),
                    addr: None,
                    requests: 2048,
                    failures: 0,
                    reconnects: 0,
                    round_trip: hist(&[90, 110]),
                    remote: None,
                    replicas: None,
                },
                ShardObsBody {
                    shard: 1,
                    kind: "http".into(),
                    addr: Some("10.0.0.7:7878".into()),
                    requests: 2048,
                    failures: 4,
                    reconnects: 1,
                    round_trip: hist(&[48_000, 52_000, 61_000]),
                    remote: Some(Box::new(MetricsBody::empty())),
                    replicas: Some(vec![sample_replica_health(0, "closed")]),
                },
            ],
            rebuild: RebuildObsBody {
                prepare: hist(&[40_000_000, 42_000_000]),
                commit: hist(&[9_000, 11_000]),
                abort: HistogramSnapshot::empty(),
            },
            http: Some(HttpObsBody {
                connections: 5,
                active: 4,
                requests: 4099,
                read: hist(&[2_000, 2_500]),
                handle: hist(&[60_000]),
                write: hist(&[1_500]),
            }),
            ingest: Some(IngestObsBody {
                accepted: 512,
                rejected: 3,
                buffered: 128,
                drift_score: 0.375,
                maintenance: hist(&[90_000_000]),
            }),
        }
    }

    #[test]
    fn metrics_body_round_trips_with_nested_remote_snapshots() {
        let body = sample_metrics_body();
        let json = serde_json::to_string(&body).unwrap();
        let back: MetricsBody = serde_json::from_str(&json).unwrap();
        assert_eq!(body, back);
        assert_eq!(back.total_requests(), 4099);
        assert_eq!(back.count_for("lookup"), 4096);
        assert_eq!(back.count_for("range_query"), 0);
        assert_eq!(back.shards[1].remote, Some(Box::new(MetricsBody::empty())));
    }

    #[test]
    fn empty_metrics_body_is_the_recorderless_answer() {
        let empty = MetricsBody::empty();
        assert_eq!(empty.total_requests(), 0);
        let json = serde_json::to_string(&empty).unwrap();
        let back: MetricsBody = serde_json::from_str(&json).unwrap();
        assert_eq!(empty, back);
    }

    #[test]
    fn prepared_body_round_trips() {
        let prepared = PreparedBody {
            num_leaves: 280,
            heap_bytes: 14336,
            ence: 0.0123,
            build_time: Duration::from_micros(4321),
        };
        let json = serde_json::to_string(&prepared).unwrap();
        let back: PreparedBody = serde_json::from_str(&json).unwrap();
        assert_eq!(prepared, back);
    }

    #[test]
    fn error_codes_map_from_proto_errors() {
        let e = ProtoError::UnsupportedVersion {
            got: 3,
            expected: 1,
        };
        assert_eq!(ErrorBody::from(&e).code, ErrorCode::UnsupportedVersion);
        let e = ProtoError::Json("boom".into());
        assert_eq!(ErrorBody::from(&e).code, ErrorCode::MalformedRequest);
    }
}
