//! The request/response messages and their versioned wire envelopes.

use crate::error::ProtoError;
use crate::wire::{
    DecisionBody, ErrorBody, HealthBody, IngestBody, MetricsBody, PreparedBody, RebuildReport,
    StatsBody, WirePoint, WireRect,
};
use fsi_pipeline::PipelineSpec;
use serde::{Deserialize, Serialize};

/// The protocol version this build speaks. Bumped on any wire-breaking
/// change; [`decode_request`] / [`decode_response`] reject other
/// versions instead of misinterpreting them.
pub const PROTO_VERSION: u32 = 1;

/// One query against a serving deployment.
///
/// Externally tagged on the wire: `{"Lookup":{"x":0.3,"y":0.7}}`,
/// `"Stats"`, … — see the crate docs for full examples.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Request {
    /// Map one point to its fair-neighborhood decision.
    Lookup {
        /// Map-space x coordinate.
        x: f64,
        /// Map-space y coordinate.
        y: f64,
    },
    /// Map a batch of points in one round-trip (the high-throughput
    /// path: one envelope, one response, amortized transport cost).
    LookupBatch {
        /// The query points, answered in order.
        points: Vec<WirePoint>,
    },
    /// Every neighborhood a closed map-space rectangle touches.
    RangeQuery {
        /// The query rectangle.
        rect: WireRect,
    },
    /// Append one observed point to the serving deployment's delta
    /// buffer (the streaming write path). The point is routed to its
    /// owning shard; the index itself is untouched until a maintenance
    /// pass merges the buffer and rebuilds.
    Ingest {
        /// Map-space x coordinate.
        x: f64,
        /// Map-space y coordinate.
        y: f64,
        /// Opaque cohort tag, tracked per cell for drift detection.
        group: u32,
        /// Observed binary outcome for the served task.
        label: bool,
    },
    /// Append a batch of observed points in one round-trip (the
    /// high-throughput write path; a coordinator fans the batch out to
    /// owning shards, same shape as [`Request::LookupBatch`]).
    IngestBatch {
        /// The observations, accepted in order.
        points: Vec<IngestBody>,
    },
    /// Service statistics: shard generations, index size, backend.
    Stats,
    /// Retrain with `spec` and hot-swap the result into every shard.
    Rebuild {
        /// The pipeline spec the new index is built from.
        spec: PipelineSpec,
    },
    /// Phase one of an orchestrated two-phase rebuild: retrain with
    /// `spec` and *stage* the result without serving it. The staged
    /// index only goes live on a later [`Request::RebuildCommit`], so a
    /// coordinator can prepare every shard before any of them publishes
    /// — no client ever observes a mixed-generation fleet.
    RebuildPrepare {
        /// The pipeline spec the staged index is built from.
        spec: PipelineSpec,
        /// Ingested observations to merge into the shard's dataset
        /// before retraining, in global accept order. Tree splits are
        /// global, so a maintenance coordinator ships every shard the
        /// *same* full delta — each shard merges it deterministically
        /// and the fleet stays bit-identical. Optional so v1 envelopes
        /// encoded before streaming ingestion existed still decode.
        delta: Option<Vec<IngestBody>>,
    },
    /// Phase two of an orchestrated rebuild: publish the index staged
    /// by the last [`Request::RebuildPrepare`].
    RebuildCommit,
    /// Abandon an orchestrated rebuild: drop any staged index without
    /// publishing it. Idempotent — aborting with nothing staged is a
    /// no-op, so a coordinator can always abort every shard after a
    /// partial prepare failure.
    RebuildAbort,
    /// One merged telemetry snapshot: request counts, latency
    /// histograms, error tallies, cache and per-shard health. A
    /// topology-aware coordinator scatter-gathers the snapshots of its
    /// remote shards into [`crate::ShardObsBody::remote`].
    Metrics,
    /// Fleet health: per-shard breaker state and replica counters from
    /// the resilience layer. Cheap — answered from coordinator-local
    /// atomics, no scatter-gather round-trips.
    Health,
}

impl Request {
    /// Semantic validation, run by [`decode_request`] before a request
    /// reaches any service: finite coordinates, ordered rectangle
    /// extents, and a well-formed rebuild spec.
    pub fn validate(&self) -> Result<(), ProtoError> {
        match self {
            Request::Lookup { x, y } => WirePoint::new(*x, *y).validate(),
            Request::LookupBatch { points } => {
                for (index, p) in points.iter().enumerate() {
                    p.validate().map_err(|e| {
                        ProtoError::InvalidRequest(format!("batch point #{index}: {e}"))
                    })?;
                }
                Ok(())
            }
            Request::RangeQuery { rect } => rect.validate(),
            Request::Ingest { x, y, .. } => WirePoint::new(*x, *y).validate(),
            Request::IngestBatch { points } => {
                for (index, p) in points.iter().enumerate() {
                    p.validate().map_err(|e| {
                        ProtoError::InvalidRequest(format!("ingest point #{index}: {e}"))
                    })?;
                }
                Ok(())
            }
            Request::Stats => Ok(()),
            Request::Rebuild { spec } => spec
                .validate()
                .map_err(|e| ProtoError::InvalidRequest(e.to_string())),
            Request::RebuildPrepare { spec, delta } => {
                spec.validate()
                    .map_err(|e| ProtoError::InvalidRequest(e.to_string()))?;
                for (index, p) in delta.iter().flatten().enumerate() {
                    p.validate().map_err(|e| {
                        ProtoError::InvalidRequest(format!("delta point #{index}: {e}"))
                    })?;
                }
                Ok(())
            }
            Request::RebuildCommit | Request::RebuildAbort | Request::Metrics | Request::Health => {
                Ok(())
            }
        }
    }
}

/// The answer to one [`Request`].
///
/// Every variant wraps a named body struct so the wire shape stays
/// stable when fields grow.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Response {
    /// Answer to [`Request::Lookup`].
    Decision {
        /// The served decision.
        decision: DecisionBody,
    },
    /// Answer to [`Request::LookupBatch`], in request order.
    Decisions {
        /// One decision per query point.
        decisions: Vec<DecisionBody>,
    },
    /// Answer to [`Request::RangeQuery`]: touched neighborhood ids,
    /// ascending, deduplicated.
    Regions {
        /// The neighborhood (leaf) ids.
        ids: Vec<usize>,
    },
    /// Answer to [`Request::Ingest`] / [`Request::IngestBatch`].
    Ingested {
        /// Observations accepted by this request.
        accepted: u64,
        /// Observations sitting in the answering deployment's delta
        /// buffer after the accept (the occupancy a maintenance policy
        /// triggers on).
        buffered: u64,
        /// The live index generation the buffer is stacked on — bumps
        /// when a maintenance rebuild folds the buffer in.
        generation: u64,
    },
    /// Answer to [`Request::Stats`].
    Stats {
        /// The service statistics. Boxed so the rare, field-heavy
        /// variants don't widen the whole enum — `Response` rides the
        /// lookup hot path by value, and the common `Decision` variant
        /// must stay a small move.
        stats: Box<StatsBody>,
    },
    /// Answer to [`Request::Rebuild`].
    Rebuilt {
        /// What the rebuild did (boxed; see [`Response::Stats`]).
        report: Box<RebuildReport>,
    },
    /// Answer to [`Request::RebuildPrepare`]: the index is staged,
    /// waiting for the commit.
    Prepared {
        /// What was staged (boxed; see [`Response::Stats`]).
        prepared: Box<PreparedBody>,
    },
    /// Answer to [`Request::RebuildCommit`].
    Committed {
        /// The generation the published index now serves at.
        generation: u64,
    },
    /// Answer to [`Request::RebuildAbort`]: any staged index was
    /// dropped; the live generation is untouched.
    Aborted,
    /// Answer to [`Request::Metrics`].
    Metrics {
        /// The merged telemetry snapshot (boxed; see
        /// [`Response::Stats`]).
        metrics: Box<MetricsBody>,
    },
    /// Answer to [`Request::Health`].
    Health {
        /// The fleet health snapshot (boxed; see [`Response::Stats`]).
        health: Box<HealthBody>,
    },
    /// Any failure, with a machine-readable code.
    Error {
        /// The structured failure.
        error: ErrorBody,
    },
}

impl Response {
    /// Shorthand for an error response.
    pub fn error(code: crate::wire::ErrorCode, message: impl Into<String>) -> Self {
        Response::Error {
            error: ErrorBody::new(code, message),
        }
    }

    /// Whether this response reports a failure.
    pub fn is_error(&self) -> bool {
        matches!(self, Response::Error { .. })
    }
}

/// The versioned frame a [`Request`] crosses a transport in.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RequestEnvelope {
    /// Protocol version ([`PROTO_VERSION`]).
    pub v: u32,
    /// The request payload.
    pub body: Request,
}

/// The versioned frame a [`Response`] crosses a transport in.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ResponseEnvelope {
    /// Protocol version ([`PROTO_VERSION`]).
    pub v: u32,
    /// The response payload.
    pub body: Response,
}

/// Serializes a request into its versioned wire form.
pub fn encode_request(request: &Request) -> String {
    serde_json::to_string(&RequestEnvelope {
        v: PROTO_VERSION,
        body: request.clone(),
    })
    .expect("protocol messages always serialize")
}

/// Serializes a response into its versioned wire form.
pub fn encode_response(response: &Response) -> String {
    serde_json::to_string(&ResponseEnvelope {
        v: PROTO_VERSION,
        body: response.clone(),
    })
    .expect("protocol messages always serialize")
}

fn check_version(v: u32) -> Result<(), ProtoError> {
    if v != PROTO_VERSION {
        return Err(ProtoError::UnsupportedVersion {
            got: v,
            expected: PROTO_VERSION,
        });
    }
    Ok(())
}

/// Decodes and fully validates one wire request: JSON shape, envelope
/// version, then [`Request::validate`]. A request that passes here is
/// safe to dispatch.
pub fn decode_request(wire: &str) -> Result<Request, ProtoError> {
    let envelope: RequestEnvelope = serde_json::from_str(wire)?;
    check_version(envelope.v)?;
    envelope.body.validate()?;
    Ok(envelope.body)
}

/// Decodes one wire response, checking the envelope version.
pub fn decode_response(wire: &str) -> Result<Response, ProtoError> {
    let envelope: ResponseEnvelope = serde_json::from_str(wire)?;
    check_version(envelope.v)?;
    Ok(envelope.body)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::ErrorCode;
    use fsi_pipeline::{Method, TaskSpec};
    use proptest::prelude::*;

    fn sample_requests() -> Vec<Request> {
        vec![
            Request::Lookup { x: 0.31, y: 0.72 },
            Request::LookupBatch {
                points: vec![WirePoint::new(0.1, 0.2), WirePoint::new(0.9, 0.8)],
            },
            Request::LookupBatch { points: vec![] },
            Request::RangeQuery {
                rect: WireRect::new(0.25, 0.25, 0.75, 0.75),
            },
            Request::Ingest {
                x: 0.42,
                y: 0.58,
                group: 3,
                label: true,
            },
            Request::IngestBatch {
                points: vec![
                    IngestBody::new(0.1, 0.2, 0, false),
                    IngestBody::new(0.9, 0.8, 7, true),
                ],
            },
            Request::IngestBatch { points: vec![] },
            Request::Stats,
            Request::Rebuild {
                spec: PipelineSpec::new(TaskSpec::act(), Method::FairKd, 4),
            },
            Request::RebuildPrepare {
                spec: PipelineSpec::new(TaskSpec::act(), Method::MedianKd, 3),
                delta: None,
            },
            Request::RebuildPrepare {
                spec: PipelineSpec::new(TaskSpec::act(), Method::MedianKd, 3),
                delta: Some(vec![IngestBody::new(0.31, 0.72, 2, false)]),
            },
            Request::RebuildCommit,
            Request::RebuildAbort,
            Request::Metrics,
            Request::Health,
        ]
    }

    fn sample_responses() -> Vec<Response> {
        vec![
            Response::Decision {
                decision: DecisionBody {
                    leaf_id: 14,
                    group: 14,
                    raw_score: 0.1 + 0.2,
                    calibrated_score: 0.3,
                },
            },
            Response::Decisions { decisions: vec![] },
            Response::Regions {
                ids: vec![0, 3, 17],
            },
            Response::Ingested {
                accepted: 2,
                buffered: 4097,
                generation: 3,
            },
            Response::Stats {
                stats: Box::new(StatsBody {
                    shards: 4,
                    generations: vec![2, 2, 2, 3],
                    num_leaves: 1024,
                    heap_bytes: 53200,
                    backend: "tree".into(),
                    cache: Some(crate::CacheStatsBody {
                        hits: 9000,
                        misses: 1000,
                        evictions: 42,
                        entries: 512,
                        capacity: 512,
                    }),
                    per_shard: Some(vec![crate::ShardStatsBody {
                        kind: "http".into(),
                        addr: Some("10.0.0.7:7878".into()),
                        generation: 3,
                        num_leaves: 256,
                        heap_bytes: 13300,
                        backend: "tree".into(),
                        unreachable: None,
                        error: None,
                    }]),
                    metrics: None,
                    health: Some(Box::new(HealthBody {
                        shards: vec![crate::ShardHealthBody {
                            shard: 0,
                            kind: "http".into(),
                            addr: Some("10.0.0.7:7878".into()),
                            state: "up".into(),
                            replicas: Vec::new(),
                        }],
                    })),
                }),
            },
            Response::Rebuilt {
                report: Box::new(RebuildReport {
                    spec: PipelineSpec::new(TaskSpec::act(), Method::MedianKd, 3),
                    generation: 2,
                    num_leaves: 8,
                    ence: 0.0123,
                    build_time: std::time::Duration::from_micros(1234),
                    total_time: std::time::Duration::new(1, 999_999_999),
                }),
            },
            Response::Prepared {
                prepared: Box::new(PreparedBody {
                    num_leaves: 280,
                    heap_bytes: 14336,
                    ence: 0.0123,
                    build_time: std::time::Duration::from_micros(4321),
                }),
            },
            Response::Committed { generation: 4 },
            Response::Aborted,
            Response::Metrics {
                metrics: Box::new(MetricsBody::empty()),
            },
            Response::Health {
                health: Box::new(HealthBody {
                    shards: vec![crate::ShardHealthBody {
                        shard: 0,
                        kind: "local".into(),
                        addr: None,
                        state: "up".into(),
                        replicas: Vec::new(),
                    }],
                }),
            },
            Response::error(ErrorCode::OutOfBounds, "point (2, 2) is outside the map"),
        ]
    }

    #[test]
    fn response_stays_narrow_for_the_lookup_hot_path() {
        // Dispatch returns Response by value per lookup; the fat
        // variants are boxed precisely so this move stays cheap.
        assert!(
            std::mem::size_of::<Response>() <= 56,
            "Response grew to {} bytes — box the new variant",
            std::mem::size_of::<Response>()
        );
    }

    #[test]
    fn every_request_round_trips_through_the_envelope() {
        for request in sample_requests() {
            let wire = encode_request(&request);
            assert!(wire.starts_with("{\"v\":1,"), "{wire}");
            let back = decode_request(&wire).unwrap();
            assert_eq!(request, back, "wire: {wire}");
        }
    }

    #[test]
    fn every_response_round_trips_through_the_envelope() {
        for response in sample_responses() {
            let wire = encode_response(&response);
            let back = decode_response(&wire).unwrap();
            assert_eq!(response, back, "wire: {wire}");
        }
    }

    #[test]
    fn pre_metrics_envelopes_still_decode() {
        // Captured from a pre-observability peer: a v1 envelope whose
        // vocabulary has no Metrics variant and whose StatsBody has no
        // metrics field. Both directions must keep decoding.
        let old_request = r#"{"v":1,"body":"Stats"}"#;
        assert_eq!(decode_request(old_request).unwrap(), Request::Stats);
        let old_response = r#"{"v":1,"body":{"Stats":{"stats":{
            "shards": 1,
            "generations": [2],
            "num_leaves": 64,
            "heap_bytes": 4096,
            "backend": "tree"
        }}}}"#;
        let Response::Stats { stats } = decode_response(old_response).unwrap() else {
            panic!("pre-metrics Stats envelope must still decode");
        };
        assert_eq!(stats.generations, vec![2]);
        assert_eq!(stats.cache, None);
        assert_eq!(stats.per_shard, None);
        assert_eq!(stats.metrics, None);
    }

    #[test]
    fn pre_ingest_envelopes_still_decode() {
        // Captured from a pre-ingestion peer: a v1 RebuildPrepare whose
        // vocabulary has no Ingest/Ingested variants and no `delta`
        // field. Both directions must keep decoding (same pattern as
        // `pre_metrics_envelopes_still_decode`).
        let new_wire = encode_request(&Request::RebuildPrepare {
            spec: PipelineSpec::new(TaskSpec::act(), Method::MedianKd, 3),
            delta: None,
        });
        let old_request = new_wire.replace(",\"delta\":null", "");
        assert_ne!(old_request, new_wire, "expected a delta field to strip");
        let Request::RebuildPrepare { spec, delta } = decode_request(&old_request).unwrap() else {
            panic!("pre-ingest RebuildPrepare envelope must still decode");
        };
        assert_eq!(spec.height, 3);
        assert_eq!(delta, None, "missing delta field must decode as None");
        // Old unit-variant requests keep decoding beside the new
        // vocabulary too.
        assert_eq!(
            decode_request(r#"{"v":1,"body":"Stats"}"#).unwrap(),
            Request::Stats
        );
        // And a pre-ingest peer's Committed response decodes unchanged.
        let old_response = r#"{"v":1,"body":{"Committed":{"generation":5}}}"#;
        assert_eq!(
            decode_response(old_response).unwrap(),
            Response::Committed { generation: 5 }
        );
    }

    #[test]
    fn pre_resilience_envelopes_still_decode() {
        // Captured from a pre-resilience peer: a v1 envelope whose
        // vocabulary has no Health variant and whose per_shard entries
        // carry no unreachable/error markers. Both directions must keep
        // decoding (same pattern as `pre_metrics_envelopes_still_decode`).
        let old_request = r#"{"v":1,"body":"Metrics"}"#;
        assert_eq!(decode_request(old_request).unwrap(), Request::Metrics);
        let old_response = r#"{"v":1,"body":{"Stats":{"stats":{
            "shards": 2,
            "generations": [5, 5],
            "num_leaves": 512,
            "heap_bytes": 24576,
            "backend": "tree",
            "per_shard": [
                {"kind": "local", "addr": null, "generation": 5,
                 "num_leaves": 256, "heap_bytes": 12288, "backend": "tree"},
                {"kind": "http", "addr": "10.0.0.7:7878", "generation": 5,
                 "num_leaves": 256, "heap_bytes": 12288, "backend": "tree"}
            ]
        }}}}"#;
        let Response::Stats { stats } = decode_response(old_response).unwrap() else {
            panic!("pre-resilience Stats envelope must still decode");
        };
        assert_eq!(stats.health, None, "missing health must decode as None");
        let per_shard = stats.per_shard.unwrap();
        assert_eq!(per_shard[1].unreachable, None);
        assert_eq!(per_shard[1].error, None);
        // The new Health vocabulary round-trips as a bare unit variant,
        // exactly like Stats/Metrics.
        let wire = encode_request(&Request::Health);
        assert_eq!(wire, r#"{"v":1,"body":"Health"}"#);
        assert_eq!(decode_request(&wire).unwrap(), Request::Health);
    }

    #[test]
    fn ingest_requests_validate_their_coordinates() {
        let bad = Request::Ingest {
            x: f64::NAN,
            y: 0.5,
            group: 0,
            label: false,
        };
        assert!(bad.validate().is_err());
        let bad_batch = Request::IngestBatch {
            points: vec![
                IngestBody::new(0.5, 0.5, 1, true),
                IngestBody::new(0.5, f64::INFINITY, 1, true),
            ],
        };
        let err = bad_batch.validate().unwrap_err();
        assert!(err.to_string().contains("ingest point #1"), "{err}");
        let bad_delta = Request::RebuildPrepare {
            spec: PipelineSpec::new(TaskSpec::act(), Method::MedianKd, 3),
            delta: Some(vec![IngestBody::new(f64::NEG_INFINITY, 0.5, 0, false)]),
        };
        let err = bad_delta.validate().unwrap_err();
        assert!(err.to_string().contains("delta point #0"), "{err}");
    }

    #[test]
    fn metrics_request_and_response_round_trip_through_the_envelope() {
        let wire = encode_request(&Request::Metrics);
        assert_eq!(wire, r#"{"v":1,"body":"Metrics"}"#);
        assert_eq!(decode_request(&wire).unwrap(), Request::Metrics);
        let response = Response::Metrics {
            metrics: Box::new(MetricsBody::empty()),
        };
        let back = decode_response(&encode_response(&response)).unwrap();
        assert_eq!(response, back);
    }

    #[test]
    fn unsupported_versions_are_rejected_not_misread() {
        let wire = encode_request(&Request::Stats).replace("\"v\":1", "\"v\":2");
        match decode_request(&wire) {
            Err(ProtoError::UnsupportedVersion {
                got: 2,
                expected: 1,
            }) => {}
            other => panic!("expected version rejection, got {other:?}"),
        }
        let wire =
            encode_response(&Response::Regions { ids: vec![] }).replace("\"v\":1", "\"v\":0");
        assert!(matches!(
            decode_response(&wire),
            Err(ProtoError::UnsupportedVersion { got: 0, .. })
        ));
    }

    #[test]
    fn malformed_wire_reports_json_errors() {
        for wire in [
            "",
            "not json",
            "{\"v\":1}",
            "{\"v\":1,\"body\":{\"Teleport\":{}}}",
            "{\"v\":1,\"body\":{\"Lookup\":{\"x\":0.5}}}",
        ] {
            assert!(
                matches!(decode_request(wire), Err(ProtoError::Json(_))),
                "{wire:?}"
            );
        }
    }

    #[test]
    fn invalid_payloads_fail_validation_on_decode() {
        // NaN is not expressible in JSON, so craft a null coordinate
        // (the vendored serde parses null as NaN for floats — exactly
        // the hole validation has to close).
        let wire = "{\"v\":1,\"body\":{\"Lookup\":{\"x\":null,\"y\":0.5}}}";
        assert!(matches!(
            decode_request(wire),
            Err(ProtoError::InvalidRequest(_))
        ));
        let inverted = Request::RangeQuery {
            rect: WireRect::new(0.9, 0.0, 0.1, 1.0),
        };
        assert!(decode_request(&encode_request(&inverted)).is_err());
        let bad_spec = Request::Rebuild {
            spec: PipelineSpec::new(TaskSpec::act(), Method::FairKd, 0),
        };
        let err = decode_request(&encode_request(&bad_spec)).unwrap_err();
        assert!(err.to_string().contains("height"), "{err}");
        let bad_batch = Request::LookupBatch {
            points: vec![WirePoint::new(0.5, 0.5), WirePoint::new(f64::NAN, 0.5)],
        };
        let err = bad_batch.validate().unwrap_err();
        assert!(err.to_string().contains("#1"), "{err}");
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(128))]

        /// Serde identity over randomized lookups: the decoded request
        /// carries bit-identical coordinates.
        #[test]
        fn lookup_round_trip_is_bit_identical(x in -1e9..1e9f64, y in -1e9..1e9f64) {
            let request = Request::Lookup { x, y };
            let back = decode_request(&encode_request(&request)).unwrap();
            let Request::Lookup { x: bx, y: by } = back else {
                panic!("variant changed in flight");
            };
            prop_assert_eq!(x.to_bits(), bx.to_bits());
            prop_assert_eq!(y.to_bits(), by.to_bits());
        }

        /// Serde identity over randomized batches and decisions.
        #[test]
        fn batch_and_decisions_round_trip(
            n in 0usize..40,
            seed in 0.0..1.0f64,
        ) {
            let points: Vec<WirePoint> = (0..n)
                .map(|i| WirePoint::new(seed * i as f64, 1.0 / (1.0 + seed + i as f64)))
                .collect();
            let request = Request::LookupBatch { points: points.clone() };
            prop_assert_eq!(decode_request(&encode_request(&request)).unwrap(), request);

            let decisions: Vec<DecisionBody> = points
                .iter()
                .enumerate()
                .map(|(i, p)| DecisionBody {
                    leaf_id: i,
                    group: i % 7,
                    raw_score: p.x,
                    calibrated_score: p.y,
                })
                .collect();
            let response = Response::Decisions { decisions };
            prop_assert_eq!(decode_response(&encode_response(&response)).unwrap(), response);
        }

        /// Serde identity over randomized stats bodies (u64 generations
        /// above 2^53 must survive, hence the full u64 range).
        #[test]
        fn stats_round_trip(g in 0u64..=u64::MAX, shards in 1usize..8, hits in any::<u64>()) {
            // Cache counters present on even shard counts, absent on
            // odd, so both wire forms stay covered.
            let cache = (shards % 2 == 0).then(|| crate::CacheStatsBody {
                hits,
                misses: hits.wrapping_mul(3),
                evictions: hits >> 4,
                entries: shards * 16,
                capacity: shards * 32,
            });
            let response = Response::Stats {
                stats: Box::new(StatsBody {
                    shards,
                    generations: (0..shards as u64).map(|i| g.wrapping_add(i)).collect(),
                    num_leaves: shards * 64,
                    heap_bytes: shards * 4096,
                    backend: "cells".into(),
                    cache,
                    per_shard: None,
                    metrics: None,
                    health: None,
                }),
            };
            prop_assert_eq!(decode_response(&encode_response(&response)).unwrap(), response);
        }

        /// Serde identity over randomized metrics bodies: sparse
        /// histograms, error tallies, per-shard entries with one level
        /// of remote nesting.
        #[test]
        fn metrics_round_trip(
            values in proptest::collection::vec(any::<u64>(), 0..50),
            shards in 0usize..4,
            slow in any::<u64>(),
            nested in any::<bool>(),
        ) {
            let hist = fsi_obs::Histogram::new();
            for &v in &values {
                hist.record(v);
            }
            let snap = hist.snapshot();
            let body = MetricsBody {
                requests: vec![crate::RequestKindMetrics {
                    kind: "lookup".into(),
                    count: values.len() as u64,
                    latency: snap.clone(),
                }],
                errors: vec![crate::ErrorCountBody {
                    code: ErrorCode::Internal,
                    count: slow >> 32,
                }],
                slow_queries: slow,
                generation: slow.wrapping_mul(31),
                cache: None,
                shards: (0..shards)
                    .map(|i| crate::ShardObsBody {
                        shard: i,
                        kind: if i % 2 == 0 { "local" } else { "http" }.into(),
                        addr: (i % 2 == 1).then(|| format!("10.0.0.{i}:7878")),
                        requests: values.len() as u64,
                        failures: i as u64,
                        reconnects: (i / 2) as u64,
                        round_trip: snap.clone(),
                        remote: (nested && i % 2 == 1)
                            .then(|| Box::new(MetricsBody::empty())),
                        replicas: None,
                    })
                    .collect(),
                rebuild: crate::RebuildObsBody {
                    prepare: snap.clone(),
                    commit: fsi_obs::HistogramSnapshot::empty(),
                    abort: snap,
                },
                http: None,
                ingest: nested.then(|| crate::IngestObsBody {
                    accepted: slow,
                    rejected: slow >> 8,
                    buffered: slow >> 16,
                    drift_score: 0.5,
                    maintenance: fsi_obs::HistogramSnapshot::empty(),
                }),
            };
            let response = Response::Metrics { metrics: Box::new(body) };
            prop_assert_eq!(decode_response(&encode_response(&response)).unwrap(), response);
        }
    }
}
