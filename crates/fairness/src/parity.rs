//! Additional group-fairness notions over spatial groups.
//!
//! The paper's related work (§3) surveys statistical parity and equalized
//! odds; this module provides them over neighborhoods so downstream users
//! can audit a partitioning against several notions at once.

use crate::error::FairnessError;
use crate::group::SpatialGroups;
use fsi_ml::metrics::validate_scores;
use serde::{Deserialize, Serialize};

/// Positive-prediction rate per group and the overall rate.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ParityReport {
    /// Positive-prediction rate per group (`None` for empty groups).
    pub group_rates: Vec<Option<f64>>,
    /// Overall positive-prediction rate.
    pub overall_rate: f64,
    /// Largest absolute gap between any non-empty group and the overall
    /// rate (the *statistical parity difference*).
    pub max_gap: f64,
}

/// Computes statistical parity of thresholded predictions across groups.
pub fn statistical_parity(
    scores: &[f64],
    labels: &[bool],
    groups: &SpatialGroups,
    threshold: f64,
) -> Result<ParityReport, FairnessError> {
    validate_scores(scores, labels)?;
    groups.check_len(scores.len())?;
    let k = groups.num_groups();
    let mut pos = vec![0usize; k];
    let mut count = vec![0usize; k];
    let mut total_pos = 0usize;
    for (i, &s) in scores.iter().enumerate() {
        let g = groups.group_of(i);
        count[g] += 1;
        if s >= threshold {
            pos[g] += 1;
            total_pos += 1;
        }
    }
    let overall_rate = total_pos as f64 / scores.len() as f64;
    let group_rates: Vec<Option<f64>> = (0..k)
        .map(|g| {
            if count[g] == 0 {
                None
            } else {
                Some(pos[g] as f64 / count[g] as f64)
            }
        })
        .collect();
    let max_gap = group_rates
        .iter()
        .flatten()
        .map(|r| (r - overall_rate).abs())
        .fold(0.0, f64::max);
    Ok(ParityReport {
        group_rates,
        overall_rate,
        max_gap,
    })
}

/// True/false positive rates per group.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OddsReport {
    /// Per-group TPR (`None` when the group has no positive labels).
    pub group_tpr: Vec<Option<f64>>,
    /// Per-group FPR (`None` when the group has no negative labels).
    pub group_fpr: Vec<Option<f64>>,
    /// Overall TPR (`None` when there are no positive labels at all).
    pub overall_tpr: Option<f64>,
    /// Overall FPR (`None` when there are no negative labels at all).
    pub overall_fpr: Option<f64>,
    /// Max |group TPR − overall TPR| over defined groups.
    pub max_tpr_gap: f64,
    /// Max |group FPR − overall FPR| over defined groups.
    pub max_fpr_gap: f64,
}

/// Computes equalized-odds gaps of thresholded predictions across groups.
pub fn equalized_odds(
    scores: &[f64],
    labels: &[bool],
    groups: &SpatialGroups,
    threshold: f64,
) -> Result<OddsReport, FairnessError> {
    validate_scores(scores, labels)?;
    groups.check_len(scores.len())?;
    let k = groups.num_groups();
    // [group][label]: counts and positive predictions.
    let mut n = vec![[0usize; 2]; k];
    let mut p = vec![[0usize; 2]; k];
    for (i, (&s, &y)) in scores.iter().zip(labels).enumerate() {
        let g = groups.group_of(i);
        let cls = usize::from(y);
        n[g][cls] += 1;
        if s >= threshold {
            p[g][cls] += 1;
        }
    }
    let total_n = [
        n.iter().map(|a| a[0]).sum::<usize>(),
        n.iter().map(|a| a[1]).sum::<usize>(),
    ];
    let total_p = [
        p.iter().map(|a| a[0]).sum::<usize>(),
        p.iter().map(|a| a[1]).sum::<usize>(),
    ];
    let rate = |pos: usize, cnt: usize| -> Option<f64> {
        if cnt == 0 {
            None
        } else {
            Some(pos as f64 / cnt as f64)
        }
    };
    let overall_tpr = rate(total_p[1], total_n[1]);
    let overall_fpr = rate(total_p[0], total_n[0]);
    let group_tpr: Vec<Option<f64>> = (0..k).map(|g| rate(p[g][1], n[g][1])).collect();
    let group_fpr: Vec<Option<f64>> = (0..k).map(|g| rate(p[g][0], n[g][0])).collect();
    let gap = |per: &[Option<f64>], overall: Option<f64>| -> f64 {
        match overall {
            None => 0.0,
            Some(o) => per
                .iter()
                .flatten()
                .map(|r| (r - o).abs())
                .fold(0.0, f64::max),
        }
    };
    Ok(OddsReport {
        max_tpr_gap: gap(&group_tpr, overall_tpr),
        max_fpr_gap: gap(&group_fpr, overall_fpr),
        group_tpr,
        group_fpr,
        overall_tpr,
        overall_fpr,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parity_detects_group_rate_gap() {
        // Group 0 always predicted positive, group 1 never.
        let scores = [0.9, 0.9, 0.1, 0.1];
        let labels = [true, false, true, false];
        let g = SpatialGroups::new(vec![0, 0, 1, 1], 2).unwrap();
        let r = statistical_parity(&scores, &labels, &g, 0.5).unwrap();
        assert_eq!(r.overall_rate, 0.5);
        assert_eq!(r.group_rates, vec![Some(1.0), Some(0.0)]);
        assert_eq!(r.max_gap, 0.5);
    }

    #[test]
    fn parity_zero_for_identical_groups() {
        let scores = [0.9, 0.1, 0.9, 0.1];
        let labels = [true, false, true, false];
        let g = SpatialGroups::new(vec![0, 0, 1, 1], 2).unwrap();
        let r = statistical_parity(&scores, &labels, &g, 0.5).unwrap();
        assert_eq!(r.max_gap, 0.0);
    }

    #[test]
    fn parity_empty_group_is_none() {
        let scores = [0.9];
        let labels = [true];
        let g = SpatialGroups::new(vec![1], 3).unwrap();
        let r = statistical_parity(&scores, &labels, &g, 0.5).unwrap();
        assert_eq!(r.group_rates[0], None);
        assert_eq!(r.group_rates[1], Some(1.0));
    }

    #[test]
    fn odds_gaps() {
        // Group 0: perfect. Group 1: always positive (FPR 1).
        let scores = [0.9, 0.1, 0.9, 0.9];
        let labels = [true, false, true, false];
        let g = SpatialGroups::new(vec![0, 0, 1, 1], 2).unwrap();
        let r = equalized_odds(&scores, &labels, &g, 0.5).unwrap();
        assert_eq!(r.overall_tpr, Some(1.0));
        assert_eq!(r.overall_fpr, Some(0.5));
        assert_eq!(r.group_fpr, vec![Some(0.0), Some(1.0)]);
        assert_eq!(r.max_fpr_gap, 0.5);
        assert_eq!(r.max_tpr_gap, 0.0);
    }

    #[test]
    fn odds_all_one_class_has_no_tpr() {
        let scores = [0.9, 0.2];
        let labels = [false, false];
        let g = SpatialGroups::new(vec![0, 0], 1).unwrap();
        let r = equalized_odds(&scores, &labels, &g, 0.5).unwrap();
        assert_eq!(r.overall_tpr, None);
        assert_eq!(r.max_tpr_gap, 0.0);
        assert_eq!(r.overall_fpr, Some(0.5));
    }

    #[test]
    fn mismatched_lengths_error() {
        let g = SpatialGroups::new(vec![0], 1).unwrap();
        assert!(statistical_parity(&[0.5, 0.6], &[true, true], &g, 0.5).is_err());
        assert!(equalized_odds(&[0.5, 0.6], &[true, true], &g, 0.5).is_err());
    }
}
