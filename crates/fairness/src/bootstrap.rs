//! Bootstrap confidence intervals for ENCE.
//!
//! Our evaluation datasets are paper-scale (≈1000 individuals), so a
//! single ENCE value carries real sampling variance — enough to flip
//! close method orderings between split seeds (see EXPERIMENTS.md). This
//! module resamples individuals with replacement and reports percentile
//! intervals, letting reports state *how sure* a comparison is.

use crate::ence::ence;
use crate::error::FairnessError;
use crate::group::SpatialGroups;
use fsi_ml::rand_util::rng_from_seed;
use rand::RngExt;
use serde::{Deserialize, Serialize};

/// A percentile bootstrap interval for ENCE.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EnceInterval {
    /// Point estimate on the original sample.
    pub point: f64,
    /// Lower percentile bound.
    pub lower: f64,
    /// Upper percentile bound.
    pub upper: f64,
    /// Number of bootstrap replicates.
    pub replicates: usize,
    /// Two-sided confidence level (e.g. 0.95).
    pub level: f64,
}

/// Computes a percentile bootstrap CI for ENCE by resampling individuals
/// (keeping each resampled individual's group).
pub fn ence_bootstrap(
    scores: &[f64],
    labels: &[bool],
    groups: &SpatialGroups,
    replicates: usize,
    level: f64,
    seed: u64,
) -> Result<EnceInterval, FairnessError> {
    if replicates < 10 {
        return Err(FairnessError::Ml(fsi_ml::MlError::InvalidHyperparameter(
            "bootstrap needs at least 10 replicates".into(),
        )));
    }
    if !(0.5..1.0).contains(&level) {
        return Err(FairnessError::Ml(fsi_ml::MlError::InvalidHyperparameter(
            format!("confidence level must be in [0.5, 1), got {level}"),
        )));
    }
    let point = ence(scores, labels, groups)?;
    let n = scores.len();
    let mut rng = rng_from_seed(seed);
    let mut draws = Vec::with_capacity(replicates);
    let mut s = vec![0.0; n];
    let mut y = vec![false; n];
    let mut g = vec![0usize; n];
    for _ in 0..replicates {
        for j in 0..n {
            let i = rng.random_range(0..n);
            s[j] = scores[i];
            y[j] = labels[i];
            g[j] = groups.group_of(i);
        }
        let resampled = SpatialGroups::new(g.clone(), groups.num_groups())?;
        draws.push(ence(&s, &y, &resampled)?);
    }
    draws.sort_by(|a, b| a.partial_cmp(b).expect("ENCE is finite"));
    let alpha = (1.0 - level) / 2.0;
    let idx =
        |q: f64| -> usize { ((q * (replicates - 1) as f64).round() as usize).min(replicates - 1) };
    Ok(EnceInterval {
        point,
        lower: draws[idx(alpha)],
        upper: draws[idx(1.0 - alpha)],
        replicates,
        level,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> (Vec<f64>, Vec<bool>, SpatialGroups) {
        let n = 200;
        let scores: Vec<f64> = (0..n)
            .map(|i| 0.2 + 0.6 * ((i % 10) as f64 / 10.0))
            .collect();
        let labels: Vec<bool> = (0..n).map(|i| (i * 13) % 7 < 3).collect();
        let groups = SpatialGroups::new((0..n).map(|i| i % 5).collect(), 5).unwrap();
        (scores, labels, groups)
    }

    #[test]
    fn interval_brackets_the_point_estimate() {
        let (s, y, g) = sample();
        let ci = ence_bootstrap(&s, &y, &g, 200, 0.95, 1).unwrap();
        assert!(ci.lower <= ci.point + 0.05, "{ci:?}");
        assert!(ci.upper >= ci.point - 0.05, "{ci:?}");
        assert!(ci.lower <= ci.upper);
        assert!(ci.lower >= 0.0);
    }

    #[test]
    fn deterministic_per_seed() {
        let (s, y, g) = sample();
        let a = ence_bootstrap(&s, &y, &g, 100, 0.9, 7).unwrap();
        let b = ence_bootstrap(&s, &y, &g, 100, 0.9, 7).unwrap();
        assert_eq!(a, b);
        let c = ence_bootstrap(&s, &y, &g, 100, 0.9, 8).unwrap();
        assert_ne!(a.lower, c.lower);
    }

    #[test]
    fn wider_level_gives_wider_interval() {
        let (s, y, g) = sample();
        let narrow = ence_bootstrap(&s, &y, &g, 400, 0.8, 3).unwrap();
        let wide = ence_bootstrap(&s, &y, &g, 400, 0.99, 3).unwrap();
        assert!(wide.upper - wide.lower >= narrow.upper - narrow.lower);
    }

    #[test]
    fn validation_rejects_bad_params() {
        let (s, y, g) = sample();
        assert!(ence_bootstrap(&s, &y, &g, 5, 0.95, 1).is_err());
        assert!(ence_bootstrap(&s, &y, &g, 100, 1.0, 1).is_err());
        assert!(ence_bootstrap(&s, &y, &g, 100, 0.2, 1).is_err());
    }

    #[test]
    fn zero_variance_data_gives_tight_interval() {
        // Perfectly calibrated constant groups: every resample has the
        // same per-group structure, ENCE ~ 0 throughout.
        let scores = vec![0.5; 100];
        let labels: Vec<bool> = (0..100).map(|i| i % 2 == 0).collect();
        let groups = SpatialGroups::new(vec![0; 100], 1).unwrap();
        let ci = ence_bootstrap(&scores, &labels, &groups, 100, 0.95, 2).unwrap();
        assert!(ci.upper < 0.15);
    }
}
