//! Error type for fairness computations.
//!
//! Part of the workspace error hierarchy: each crate keeps a focused
//! enum, and the `fsi` facade unifies them all under `fsi::FsiError`
//! (with source-chaining back to this type). Application code should
//! match on `FsiError`; match here only when using this crate directly.

use fsi_geo::GeoError;
use fsi_ml::MlError;
use std::fmt;

/// Errors produced by spatial-fairness metrics.
#[derive(Debug)]
pub enum FairnessError {
    /// An underlying score/label validation failed.
    Ml(MlError),
    /// An underlying partition/grid lookup failed.
    Geo(GeoError),
    /// The group assignment disagrees in length with scores/labels.
    GroupMismatch {
        /// Number of individuals implied by scores/labels.
        expected: usize,
        /// Number of group assignments supplied.
        got: usize,
    },
    /// A group id is out of range.
    GroupOutOfRange {
        /// The offending group id.
        group: usize,
        /// Number of groups.
        num_groups: usize,
    },
}

impl fmt::Display for FairnessError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FairnessError::Ml(e) => write!(f, "{e}"),
            FairnessError::Geo(e) => write!(f, "{e}"),
            FairnessError::GroupMismatch { expected, got } => {
                write!(f, "group assignment: expected length {expected}, got {got}")
            }
            FairnessError::GroupOutOfRange { group, num_groups } => {
                write!(f, "group id {group} out of range for {num_groups} groups")
            }
        }
    }
}

impl std::error::Error for FairnessError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FairnessError::Ml(e) => Some(e),
            FairnessError::Geo(e) => Some(e),
            _ => None,
        }
    }
}

impl From<MlError> for FairnessError {
    fn from(e: MlError) -> Self {
        FairnessError::Ml(e)
    }
}

impl From<GeoError> for FairnessError {
    fn from(e: GeoError) -> Self {
        FairnessError::Geo(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_informative() {
        let e = FairnessError::GroupMismatch {
            expected: 5,
            got: 3,
        };
        assert!(e.to_string().contains('5'));
        let e = FairnessError::GroupOutOfRange {
            group: 9,
            num_groups: 4,
        };
        assert!(e.to_string().contains('9'));
    }
}
