//! ENCE and per-neighborhood calibration (paper Definitions 2 and 3).

use crate::error::FairnessError;
use crate::group::SpatialGroups;
use fsi_ml::calibration::BinningStrategy;
use fsi_ml::metrics::validate_scores;
use serde::{Deserialize, Serialize};

/// Calibration summary of one neighborhood.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GroupCalibration {
    /// Number of resident individuals `|N_i|`.
    pub count: usize,
    /// Expected confidence score `e(h | N = N_i)` (paper Eq. 7).
    pub mean_score: f64,
    /// True positive fraction `o(h | N = N_i)` (paper Eq. 8).
    pub positive_fraction: f64,
    /// Absolute mis-calibration `|e − o|` (the paper's adopted form).
    pub absolute_error: f64,
    /// Calibration ratio `e / o` (paper Eq. 4, first form); `None` when the
    /// neighborhood has no positive labels — the division-by-zero case the
    /// paper's absolute form avoids.
    pub ratio: Option<f64>,
}

/// Per-neighborhood calibration statistics. Empty neighborhoods yield a
/// zero-count entry with zeroed statistics.
pub fn group_calibration(
    scores: &[f64],
    labels: &[bool],
    groups: &SpatialGroups,
) -> Result<Vec<GroupCalibration>, FairnessError> {
    validate_scores(scores, labels)?;
    groups.check_len(scores.len())?;
    let k = groups.num_groups();
    let mut count = vec![0usize; k];
    let mut sum_s = vec![0.0f64; k];
    let mut sum_y = vec![0.0f64; k];
    for (i, (&s, &y)) in scores.iter().zip(labels).enumerate() {
        let g = groups.group_of(i);
        count[g] += 1;
        sum_s[g] += s;
        sum_y[g] += f64::from(u8::from(y));
    }
    Ok((0..k)
        .map(|g| {
            if count[g] == 0 {
                return GroupCalibration {
                    count: 0,
                    mean_score: 0.0,
                    positive_fraction: 0.0,
                    absolute_error: 0.0,
                    ratio: None,
                };
            }
            let n = count[g] as f64;
            let e = sum_s[g] / n;
            let o = sum_y[g] / n;
            GroupCalibration {
                count: count[g],
                mean_score: e,
                positive_fraction: o,
                absolute_error: (e - o).abs(),
                ratio: if o > 0.0 { Some(e / o) } else { None },
            }
        })
        .collect())
}

/// Expected Neighborhood Calibration Error (paper Definition 3):
///
/// `ENCE = Σ_i (|N_i|/|D|) · |o(N_i) − e(N_i)|`
///
/// Empty neighborhoods contribute zero. Equivalently this is
/// `(1/|D|) Σ_i |net residual of N_i|`, the identity the fair split
/// objective exploits.
pub fn ence(scores: &[f64], labels: &[bool], groups: &SpatialGroups) -> Result<f64, FairnessError> {
    let stats = group_calibration(scores, labels, groups)?;
    let n = scores.len() as f64;
    Ok(stats
        .iter()
        .map(|s| (s.count as f64 / n) * s.absolute_error)
        .sum())
}

/// Total absolute net residual `Σ_i |Σ_{u∈N_i} (s_u − y_u)| = ENCE · |D|` —
/// the un-normalized mass used in the Theorem 1/2 statements.
pub fn residual_mass(
    scores: &[f64],
    labels: &[bool],
    groups: &SpatialGroups,
) -> Result<f64, FairnessError> {
    Ok(ence(scores, labels, groups)? * scores.len() as f64)
}

/// Per-neighborhood Expected Calibration Error (paper Figure 6b/6d; 15
/// bins in the paper's setup). Empty neighborhoods yield `None`.
pub fn group_ece(
    scores: &[f64],
    labels: &[bool],
    groups: &SpatialGroups,
    bins: usize,
    strategy: BinningStrategy,
) -> Result<Vec<Option<f64>>, FairnessError> {
    validate_scores(scores, labels)?;
    groups.check_len(scores.len())?;
    let members = groups.members();
    members
        .iter()
        .map(|member| {
            if member.is_empty() {
                return Ok(None);
            }
            let s: Vec<f64> = member.iter().map(|&i| scores[i]).collect();
            let y: Vec<bool> = member.iter().map(|&i| labels[i]).collect();
            fsi_ml::calibration::expected_calibration_error(&s, &y, bins, strategy)
                .map(Some)
                .map_err(FairnessError::Ml)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn groups2() -> SpatialGroups {
        // Individuals 0..4 in group 0, 4..8 in group 1.
        SpatialGroups::new(vec![0, 0, 0, 0, 1, 1, 1, 1], 2).unwrap()
    }

    #[test]
    fn per_group_statistics() {
        let scores = [0.8, 0.8, 0.8, 0.8, 0.2, 0.2, 0.2, 0.2];
        let labels = [true, true, false, false, false, false, false, true];
        let stats = group_calibration(&scores, &labels, &groups2()).unwrap();
        assert_eq!(stats[0].count, 4);
        assert!((stats[0].mean_score - 0.8).abs() < 1e-12);
        assert!((stats[0].positive_fraction - 0.5).abs() < 1e-12);
        assert!((stats[0].absolute_error - 0.3).abs() < 1e-12);
        assert!((stats[0].ratio.unwrap() - 1.6).abs() < 1e-12);
        assert!((stats[1].absolute_error - 0.05).abs() < 1e-12);
    }

    #[test]
    fn ence_weights_by_population() {
        let scores = [0.8, 0.8, 0.8, 0.8, 0.2, 0.2, 0.2, 0.2];
        let labels = [true, true, false, false, false, false, false, true];
        // ENCE = (4/8)*0.3 + (4/8)*0.05 = 0.175
        let v = ence(&scores, &labels, &groups2()).unwrap();
        assert!((v - 0.175).abs() < 1e-12);
        assert!((residual_mass(&scores, &labels, &groups2()).unwrap() - 1.4).abs() < 1e-9);
    }

    #[test]
    fn perfectly_calibrated_groups_have_zero_ence() {
        let scores = [0.5, 0.5, 1.0, 1.0];
        let labels = [true, false, true, true];
        let g = SpatialGroups::new(vec![0, 0, 1, 1], 2).unwrap();
        assert!(ence(&scores, &labels, &g).unwrap() < 1e-12);
    }

    #[test]
    fn empty_groups_contribute_zero() {
        let scores = [0.9, 0.9];
        let labels = [true, false];
        let g = SpatialGroups::new(vec![2, 2], 5).unwrap();
        let stats = group_calibration(&scores, &labels, &g).unwrap();
        assert_eq!(stats.len(), 5);
        assert_eq!(stats[0].count, 0);
        assert_eq!(stats[0].ratio, None);
        let v = ence(&scores, &labels, &g).unwrap();
        assert!((v - 0.4).abs() < 1e-12);
    }

    #[test]
    fn ratio_none_without_positives() {
        let scores = [0.3, 0.3];
        let labels = [false, false];
        let g = SpatialGroups::new(vec![0, 0], 1).unwrap();
        let stats = group_calibration(&scores, &labels, &g).unwrap();
        assert_eq!(stats[0].ratio, None);
        assert!((stats[0].absolute_error - 0.3).abs() < 1e-12);
    }

    #[test]
    fn group_ece_matches_global_for_one_group() {
        let scores = [0.9, 0.9, 0.1, 0.3];
        let labels = [true, false, false, true];
        let g = SpatialGroups::new(vec![0, 0, 0, 0], 1).unwrap();
        let per_group = group_ece(&scores, &labels, &g, 15, BinningStrategy::EqualWidth).unwrap();
        let global = fsi_ml::calibration::expected_calibration_error(
            &scores,
            &labels,
            15,
            BinningStrategy::EqualWidth,
        )
        .unwrap();
        assert!((per_group[0].unwrap() - global).abs() < 1e-12);
    }

    #[test]
    fn group_ece_empty_group_is_none() {
        let scores = [0.5];
        let labels = [true];
        let g = SpatialGroups::new(vec![1], 2).unwrap();
        let per_group = group_ece(&scores, &labels, &g, 5, BinningStrategy::EqualWidth).unwrap();
        assert_eq!(per_group[0], None);
        assert!(per_group[1].is_some());
    }

    #[test]
    fn length_mismatch_detected() {
        let g = SpatialGroups::new(vec![0], 1).unwrap();
        assert!(ence(&[0.5, 0.5], &[true, false], &g).is_err());
    }

    #[test]
    fn single_group_ence_equals_overall_miscalibration() {
        let scores = [0.9, 0.8, 0.7, 0.2];
        let labels = [true, false, true, false];
        let g = SpatialGroups::new(vec![0; 4], 1).unwrap();
        let v = ence(&scores, &labels, &g).unwrap();
        let overall = fsi_ml::calibration::miscalibration(&scores, &labels).unwrap();
        assert!((v - overall).abs() < 1e-12);
    }
}
