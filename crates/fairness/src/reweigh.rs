//! The Kamiran–Calders re-weighting baseline.
//!
//! "Reweighting over grid — an adaptation of the re-weighting approach used
//! in [Kamiran & Calders 2012] and deployed in geospatial tools such as IBM
//! AI Fairness 360" (paper §5.1). Each individual receives weight
//!
//! `w(g, y) = P(g) · P(y) / P(g, y)`
//!
//! which makes label frequency statistically independent of the (spatial)
//! group in the re-weighted sample. The weights feed into the weighted
//! trainers of `fsi-ml`.

use crate::error::FairnessError;
use crate::group::SpatialGroups;
use serde::{Deserialize, Serialize};

/// Re-weighting result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Reweighing {
    /// Per-individual training weight.
    pub weights: Vec<f64>,
    /// Weight assigned to each `(group, label)` combination, indexed
    /// `[group][label as usize]`; `None` for empty combinations.
    pub table: Vec<[Option<f64>; 2]>,
}

/// Computes Kamiran–Calders weights for spatial groups.
pub fn reweigh(labels: &[bool], groups: &SpatialGroups) -> Result<Reweighing, FairnessError> {
    groups.check_len(labels.len())?;
    if labels.is_empty() {
        return Err(FairnessError::Ml(fsi_ml::MlError::EmptyDataset));
    }
    let n = labels.len() as f64;
    let k = groups.num_groups();
    let mut n_group = vec![0usize; k];
    let mut n_label = [0usize; 2];
    let mut n_joint = vec![[0usize; 2]; k];
    for (i, &y) in labels.iter().enumerate() {
        let g = groups.group_of(i);
        let cls = usize::from(y);
        n_group[g] += 1;
        n_label[cls] += 1;
        n_joint[g][cls] += 1;
    }
    let table: Vec<[Option<f64>; 2]> = (0..k)
        .map(|g| {
            [0usize, 1].map(|cls| {
                if n_joint[g][cls] == 0 {
                    None
                } else {
                    // P(g)P(y)/P(g,y) = (n_g/n)(n_y/n)/(n_gy/n)
                    Some(
                        (n_group[g] as f64 / n) * (n_label[cls] as f64 / n)
                            / (n_joint[g][cls] as f64 / n),
                    )
                }
            })
        })
        .collect();
    let weights = labels
        .iter()
        .enumerate()
        .map(|(i, &y)| {
            table[groups.group_of(i)][usize::from(y)].expect("occupied combination has a weight")
        })
        .collect();
    Ok(Reweighing { weights, table })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn balanced_data_gets_unit_weights() {
        // Two groups, both 50% positive: every weight is 1.
        let labels = [true, false, true, false];
        let g = SpatialGroups::new(vec![0, 0, 1, 1], 2).unwrap();
        let r = reweigh(&labels, &g).unwrap();
        for w in &r.weights {
            assert!((w - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn skewed_group_is_corrected() {
        // Group 0: 3 positives, 1 negative. Group 1: 1 positive, 3 negatives.
        let labels = [true, true, true, false, true, false, false, false];
        let g = SpatialGroups::new(vec![0, 0, 0, 0, 1, 1, 1, 1], 2).unwrap();
        let r = reweigh(&labels, &g).unwrap();
        // P(g0)=0.5, P(+)=0.5, P(g0,+)=3/8 -> w = 0.25/0.375 = 2/3.
        assert!((r.table[0][1].unwrap() - 2.0 / 3.0).abs() < 1e-12);
        // P(g0,-)=1/8 -> w = 0.25/0.125 = 2.
        assert!((r.table[0][0].unwrap() - 2.0).abs() < 1e-12);
        // Weighted positive mass in group 0: 3*(2/3) = 2 equals weighted
        // negative mass 1*2 = 2 — label balance restored.
        let pos_mass: f64 = labels
            .iter()
            .enumerate()
            .filter(|&(i, &y)| g.group_of(i) == 0 && y)
            .map(|(i, _)| r.weights[i])
            .sum();
        let neg_mass: f64 = labels
            .iter()
            .enumerate()
            .filter(|&(i, &y)| g.group_of(i) == 0 && !y)
            .map(|(i, _)| r.weights[i])
            .sum();
        assert!((pos_mass - neg_mass).abs() < 1e-12);
    }

    #[test]
    fn reweighting_makes_label_independent_of_group() {
        // After reweighting, P_w(y=1 | g) should equal P_w(y=1) for all g.
        let labels = [true, true, false, true, false, false, false, true, true];
        let g = SpatialGroups::new(vec![0, 0, 0, 1, 1, 1, 2, 2, 2], 3).unwrap();
        let r = reweigh(&labels, &g).unwrap();
        let total_w: f64 = r.weights.iter().sum();
        let total_pos: f64 = r
            .weights
            .iter()
            .zip(&labels)
            .filter(|(_, &y)| y)
            .map(|(w, _)| w)
            .sum();
        let overall = total_pos / total_w;
        for grp in 0..3 {
            let gw: f64 = (0..labels.len())
                .filter(|&i| g.group_of(i) == grp)
                .map(|i| r.weights[i])
                .sum();
            let gpos: f64 = (0..labels.len())
                .filter(|&i| g.group_of(i) == grp && labels[i])
                .map(|i| r.weights[i])
                .sum();
            assert!(
                ((gpos / gw) - overall).abs() < 1e-9,
                "group {grp} not balanced"
            );
        }
    }

    #[test]
    fn empty_combination_is_none() {
        let labels = [true, true]; // group 0 has no negatives
        let g = SpatialGroups::new(vec![0, 0], 1).unwrap();
        let r = reweigh(&labels, &g).unwrap();
        assert_eq!(r.table[0][0], None);
        assert!(r.table[0][1].is_some());
    }

    #[test]
    fn weights_are_positive_and_finite() {
        let labels = [true, false, true, true, false];
        let g = SpatialGroups::new(vec![0, 1, 1, 0, 0], 2).unwrap();
        let r = reweigh(&labels, &g).unwrap();
        assert!(r.weights.iter().all(|w| w.is_finite() && *w > 0.0));
    }

    #[test]
    fn empty_dataset_errors() {
        let g = SpatialGroups::new(vec![], 1).unwrap();
        assert!(reweigh(&[], &g).is_err());
    }
}
