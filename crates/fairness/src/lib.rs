//! # fsi-fairness — spatial group fairness metrics and baselines
//!
//! Implements the paper's fairness machinery over *spatial groups*
//! (neighborhoods):
//!
//! * [`SpatialGroups`] — the assignment of
//!   individuals to neighborhoods induced by a grid partition.
//! * [`ence()`] — Expected Neighborhood Calibration Error
//!   (Definition 3): `Σ_i (|N_i|/|D|) · |o(N_i) − e(N_i)|`.
//! * [`group_calibration`] — per-neighborhood
//!   `e`, `o`, `|e−o|` and `e/o` (Figure 6a/6c).
//! * [`group_ece`] — per-neighborhood binned ECE
//!   (Figure 6b/6d; the paper uses 15 bins).
//! * [`parity`] — statistical parity and equalized-odds gaps across
//!   neighborhoods, the additional group-fairness notions surveyed in §3.
//! * [`reweigh`] — the Kamiran–Calders re-weighting baseline ("Grid
//!   (Reweighting)" in Figures 7, 8 and 10).
//! * [`bounds`] — numeric forms of Theorems 1 and 2, used by the
//!   property-based test-suite.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bootstrap;
pub mod bounds;
pub mod ence;
pub mod error;
pub mod group;
pub mod parity;
pub mod reweigh;

pub use ence::{ence, group_calibration, group_ece, GroupCalibration};
pub use error::FairnessError;
pub use group::SpatialGroups;
