//! Numeric forms of the paper's Theorems 1 and 2.
//!
//! * **Theorem 1.** For any complete non-overlapping partitioning,
//!   `Σ_i |N_i| · |e(N_i) − o(N_i)|  ≥  |D| · |e(h) − o(h)|`, i.e.
//!   `ENCE ≥ |e(h) − o(h)|` — ENCE can never beat the overall model
//!   mis-calibration.
//! * **Theorem 2.** If `N₂` is a sub-partitioning (refinement) of `N₁`
//!   then `ENCE(N₁) ≤ ENCE(N₂)` — refining can only worsen ENCE.
//!
//! Both follow from the triangle inequality on net residuals; the
//! functions below compute both sides so property tests can assert the
//! inequalities on arbitrary inputs.

use crate::ence::ence;
use crate::error::FairnessError;
use crate::group::SpatialGroups;
use fsi_ml::calibration::miscalibration;

/// Both sides of Theorem 1: `(ence, overall_miscalibration)`, with the
/// guarantee `ence >= overall_miscalibration` (up to float rounding).
pub fn theorem1_sides(
    scores: &[f64],
    labels: &[bool],
    groups: &SpatialGroups,
) -> Result<(f64, f64), FairnessError> {
    let e = ence(scores, labels, groups)?;
    let overall = miscalibration(scores, labels)?;
    Ok((e, overall))
}

/// Checks Theorem 1 with a small numerical tolerance.
pub fn theorem1_holds(
    scores: &[f64],
    labels: &[bool],
    groups: &SpatialGroups,
) -> Result<bool, FairnessError> {
    let (e, overall) = theorem1_sides(scores, labels, groups)?;
    Ok(e >= overall - 1e-9)
}

/// Both sides of Theorem 2 for a coarse partition and one of its
/// refinements: `(ence_coarse, ence_fine)`, with the guarantee
/// `ence_coarse <= ence_fine` **when `fine` actually refines `coarse`**
/// (the caller asserts that relationship; see
/// [`fsi_geo::Partition::refines`]).
pub fn theorem2_sides(
    scores: &[f64],
    labels: &[bool],
    coarse: &SpatialGroups,
    fine: &SpatialGroups,
) -> Result<(f64, f64), FairnessError> {
    Ok((ence(scores, labels, coarse)?, ence(scores, labels, fine)?))
}

/// Checks Theorem 2 with a small numerical tolerance.
pub fn theorem2_holds(
    scores: &[f64],
    labels: &[bool],
    coarse: &SpatialGroups,
    fine: &SpatialGroups,
) -> Result<bool, FairnessError> {
    let (c, f) = theorem2_sides(scores, labels, coarse, fine)?;
    Ok(c <= f + 1e-9)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn theorem1_on_a_hand_case() {
        let scores = [0.9, 0.1, 0.8, 0.2];
        let labels = [false, true, true, false];
        let g = SpatialGroups::new(vec![0, 0, 1, 1], 2).unwrap();
        let (e, overall) = theorem1_sides(&scores, &labels, &g).unwrap();
        assert!(e >= overall);
        assert!(theorem1_holds(&scores, &labels, &g).unwrap());
    }

    #[test]
    fn theorem2_on_a_hand_case() {
        // Fine groups split each coarse group in two.
        let scores = [0.9, 0.1, 0.8, 0.2];
        let labels = [false, true, true, false];
        let coarse = SpatialGroups::new(vec![0, 0, 1, 1], 2).unwrap();
        let fine = SpatialGroups::new(vec![0, 1, 2, 3], 4).unwrap();
        assert!(theorem2_holds(&scores, &labels, &coarse, &fine).unwrap());
    }

    proptest! {
        /// Theorem 1 holds for arbitrary scores, labels and groupings.
        #[test]
        fn theorem1_universal(
            data in proptest::collection::vec((0.0f64..=1.0, any::<bool>(), 0usize..6), 1..80)
        ) {
            let scores: Vec<f64> = data.iter().map(|d| d.0).collect();
            let labels: Vec<bool> = data.iter().map(|d| d.1).collect();
            let assignment: Vec<usize> = data.iter().map(|d| d.2).collect();
            let groups = SpatialGroups::new(assignment, 6).unwrap();
            prop_assert!(theorem1_holds(&scores, &labels, &groups).unwrap());
        }

        /// Theorem 2 holds whenever the fine grouping refines the coarse
        /// one. We construct refinement by construction: fine group id
        /// determines coarse group id via integer division.
        #[test]
        fn theorem2_universal(
            data in proptest::collection::vec((0.0f64..=1.0, any::<bool>(), 0usize..8), 1..80)
        ) {
            let scores: Vec<f64> = data.iter().map(|d| d.0).collect();
            let labels: Vec<bool> = data.iter().map(|d| d.1).collect();
            let fine_assignment: Vec<usize> = data.iter().map(|d| d.2).collect();
            let coarse_assignment: Vec<usize> =
                fine_assignment.iter().map(|g| g / 2).collect();
            let fine = SpatialGroups::new(fine_assignment, 8).unwrap();
            let coarse = SpatialGroups::new(coarse_assignment, 4).unwrap();
            prop_assert!(theorem2_holds(&scores, &labels, &coarse, &fine).unwrap());
        }

        /// The trivial single-group partition achieves the Theorem-1 lower
        /// bound with equality.
        #[test]
        fn single_group_attains_bound(
            data in proptest::collection::vec((0.0f64..=1.0, any::<bool>()), 1..50)
        ) {
            let scores: Vec<f64> = data.iter().map(|d| d.0).collect();
            let labels: Vec<bool> = data.iter().map(|d| d.1).collect();
            let groups = SpatialGroups::new(vec![0; scores.len()], 1).unwrap();
            let (e, overall) = theorem1_sides(&scores, &labels, &groups).unwrap();
            prop_assert!((e - overall).abs() < 1e-9);
        }
    }
}
