//! Spatial group assignments.

use crate::error::FairnessError;
use fsi_geo::{CellId, Partition};
use serde::{Deserialize, Serialize};

/// Assignment of individuals to spatial groups (neighborhoods).
///
/// Group ids are dense `0..num_groups`; groups may be empty (a neighborhood
/// with no resident individuals), which matters for ENCE where empty
/// neighborhoods contribute zero weight.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SpatialGroups {
    group_of: Vec<usize>,
    num_groups: usize,
}

impl SpatialGroups {
    /// Creates a group assignment, validating ids against `num_groups`.
    pub fn new(group_of: Vec<usize>, num_groups: usize) -> Result<Self, FairnessError> {
        if let Some(&bad) = group_of.iter().find(|&&g| g >= num_groups) {
            return Err(FairnessError::GroupOutOfRange {
                group: bad,
                num_groups,
            });
        }
        Ok(Self {
            group_of,
            num_groups,
        })
    }

    /// Derives groups from each individual's base-grid cell under a
    /// partition of that grid — the paper's "all individuals whose
    /// locations belong to a certain region are assigned to the
    /// corresponding group".
    pub fn from_partition(cells: &[CellId], partition: &Partition) -> Result<Self, FairnessError> {
        let group_of = cells
            .iter()
            .map(|&c| partition.try_region_of(c).map_err(FairnessError::Geo))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Self {
            group_of,
            num_groups: partition.num_regions(),
        })
    }

    /// Number of individuals.
    #[inline]
    pub fn len(&self) -> usize {
        self.group_of.len()
    }

    /// `true` when there are no individuals.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.group_of.is_empty()
    }

    /// Number of groups (including empty ones).
    #[inline]
    pub fn num_groups(&self) -> usize {
        self.num_groups
    }

    /// Group of individual `i`.
    #[inline]
    pub fn group_of(&self, i: usize) -> usize {
        self.group_of[i]
    }

    /// The raw per-individual assignment.
    #[inline]
    pub fn assignments(&self) -> &[usize] {
        &self.group_of
    }

    /// Individuals of each group.
    pub fn members(&self) -> Vec<Vec<usize>> {
        let mut out = vec![Vec::new(); self.num_groups];
        for (i, &g) in self.group_of.iter().enumerate() {
            out[g].push(i);
        }
        out
    }

    /// Population of each group.
    pub fn populations(&self) -> Vec<usize> {
        let mut out = vec![0usize; self.num_groups];
        for &g in &self.group_of {
            out[g] += 1;
        }
        out
    }

    /// Validates that `values` has one entry per individual.
    pub(crate) fn check_len(&self, len: usize) -> Result<(), FairnessError> {
        if len != self.group_of.len() {
            return Err(FairnessError::GroupMismatch {
                expected: len,
                got: self.group_of.len(),
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fsi_geo::Grid;

    #[test]
    fn new_validates_ids() {
        assert!(SpatialGroups::new(vec![0, 1, 2], 3).is_ok());
        assert!(matches!(
            SpatialGroups::new(vec![0, 3], 3),
            Err(FairnessError::GroupOutOfRange { group: 3, .. })
        ));
    }

    #[test]
    fn from_partition_maps_cells() {
        let grid = Grid::unit(4).unwrap();
        let p = Partition::uniform(&grid, 2, 1).unwrap(); // south / north halves
                                                          // Individuals in cells 0 (row 0) and 15 (row 3).
        let g = SpatialGroups::from_partition(&[0, 15, 1], &p).unwrap();
        assert_eq!(g.assignments(), &[0, 1, 0]);
        assert_eq!(g.num_groups(), 2);
        // Bad cell id.
        assert!(SpatialGroups::from_partition(&[99], &p).is_err());
    }

    #[test]
    fn members_and_populations() {
        let g = SpatialGroups::new(vec![0, 2, 0, 2], 4).unwrap();
        assert_eq!(g.populations(), vec![2, 0, 2, 0]);
        let members = g.members();
        assert_eq!(members[0], vec![0, 2]);
        assert!(members[1].is_empty());
        assert_eq!(members[2], vec![1, 3]);
    }

    #[test]
    fn check_len_guards() {
        let g = SpatialGroups::new(vec![0, 0], 1).unwrap();
        assert!(g.check_len(2).is_ok());
        assert!(g.check_len(3).is_err());
    }
}
