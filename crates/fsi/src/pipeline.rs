//! The fluent pipeline builder: dataset → fair index → decisions.
//!
//! [`Pipeline`] assembles a validated [`PipelineSpec`] step by step and
//! executes it; the resulting [`Run`] carries the evaluation, exposes
//! the partition, and continues into the serving layer
//! ([`Run::freeze`], [`Run::serve`]) or onto disk ([`Run::save_report`]).

use crate::error::FsiError;
use fsi_core::TieBreak;
use fsi_data::{LocationEncoding, SpatialDataset};
use fsi_geo::Partition;
use fsi_pipeline::{
    run_spec, EvalReport, Method, MethodRun, ModelKind, ModelSnapshot, PipelineSpec, RunConfig,
    TaskSpec,
};
use fsi_serve::{
    compile_run, CacheSpec, FrozenIndex, IndexHandle, IndexReader, MaintenanceHandle,
    MaintenanceSpec, QueryService, RebuildReport, Rebuilder, Topology, TopologySpec,
};
use serde::{Deserialize, Serialize};
use std::net::ToSocketAddrs;
use std::path::Path;
use std::sync::Arc;

/// Fluent builder for one pipeline execution.
///
/// Starts from a dataset with the paper's defaults (ACT task, Fair
/// KD-tree, height 6, logistic regression, seed 7) and lets each call
/// override one knob. [`Pipeline::run`] validates the assembled
/// [`PipelineSpec`] before any work happens.
///
/// ```
/// use fsi::{Method, ModelKind, Pipeline, TaskSpec};
///
/// let dataset = fsi_data::synth::city::CityGenerator::new(
///     fsi_data::synth::city::CityConfig {
///         n_individuals: 200,
///         grid_side: 16,
///         seed: 1,
///         ..Default::default()
///     },
/// )
/// .unwrap()
/// .generate()
/// .unwrap();
///
/// let run = Pipeline::on(&dataset)
///     .task(TaskSpec::act())
///     .method(Method::FairKd)
///     .height(4)
///     .model(ModelKind::Logistic)
///     .seed(7)
///     .run()
///     .unwrap();
/// assert!(run.eval().full.ence.is_finite());
/// let index = run.freeze().unwrap();
/// assert_eq!(index.num_leaves(), run.partition().num_regions());
/// ```
#[derive(Debug, Clone)]
pub struct Pipeline<'d> {
    dataset: &'d SpatialDataset,
    spec: PipelineSpec,
}

impl<'d> Pipeline<'d> {
    /// Starts a pipeline over `dataset` with the paper's defaults.
    pub fn on(dataset: &'d SpatialDataset) -> Self {
        Self {
            dataset,
            spec: PipelineSpec::new(TaskSpec::act(), Method::FairKd, 6),
        }
    }

    /// Starts a pipeline from a fully assembled spec (e.g. one restored
    /// from JSON).
    pub fn from_spec(dataset: &'d SpatialDataset, spec: PipelineSpec) -> Self {
        Self { dataset, spec }
    }

    /// Sets the classification task.
    pub fn task(mut self, task: TaskSpec) -> Self {
        self.spec.task = task;
        self
    }

    /// Sets the partitioning method.
    pub fn method(mut self, method: Method) -> Self {
        self.spec.method = method;
        self
    }

    /// Sets the tree height (region budget `2^height`).
    pub fn height(mut self, height: usize) -> Self {
        self.spec.height = height;
        self
    }

    /// Sets the classifier family.
    pub fn model(mut self, model: ModelKind) -> Self {
        self.spec.config.model = model;
        self
    }

    /// Sets the seed for the train/test split and zip-code seeds.
    pub fn seed(mut self, seed: u64) -> Self {
        self.spec.config.seed = seed;
        self
    }

    /// Sets the held-out fraction (must lie in `[0, 1)`).
    pub fn test_fraction(mut self, fraction: f64) -> Self {
        self.spec.config.test_fraction = fraction;
        self
    }

    /// Sets the neighborhood encoding fed to the classifier.
    pub fn encoding(mut self, encoding: LocationEncoding) -> Self {
        self.spec.config.encoding = encoding;
        self
    }

    /// Sets the tie-break rule for split plateaus.
    pub fn tie_break(mut self, tie_break: TieBreak) -> Self {
        self.spec.config.tie_break = tie_break;
        self
    }

    /// Sets the number of Voronoi seeds for the zip-code baseline.
    pub fn zip_seeds(mut self, seeds: usize) -> Self {
        self.spec.config.zip_seeds = seeds;
        self
    }

    /// Overrides the `(rows, cols)` block shape of the
    /// [`Method::GridReweight`] baseline (rejected for other methods).
    pub fn reweight_blocks(mut self, rows: usize, cols: usize) -> Self {
        self.spec.reweight_blocks = Some((rows, cols));
        self
    }

    /// Replaces the whole shared [`RunConfig`] at once.
    pub fn config(mut self, config: RunConfig) -> Self {
        self.spec.config = config;
        self
    }

    /// The spec assembled so far.
    pub fn spec(&self) -> &PipelineSpec {
        &self.spec
    }

    /// Validates the assembled spec without running anything.
    pub fn validate(&self) -> Result<(), FsiError> {
        self.spec.validate().map_err(FsiError::from)
    }

    /// Executes the pipeline: validate, build the partition, train the
    /// final model, evaluate.
    pub fn run(self) -> Result<Run<'d>, FsiError> {
        let inner = run_spec(self.dataset, &self.spec)?;
        Ok(Run {
            dataset: self.dataset,
            spec: self.spec,
            inner,
        })
    }
}

/// A finished pipeline execution.
///
/// Dereferences to the underlying [`MethodRun`], so every field of the
/// raw run (`scores`, `labels`, `importances`, `build_time`, …) remains
/// reachable. On top of that it carries the spec it was built from and
/// the downstream transitions: [`Run::freeze`] compiles the run into an
/// immutable [`FrozenIndex`], [`Run::serve`] additionally wires it into
/// a hot-swappable [`IndexHandle`] with a [`Rebuilder`], and
/// [`Run::save_report`] persists the whole cell as one JSON value.
#[derive(Debug, Clone)]
pub struct Run<'d> {
    dataset: &'d SpatialDataset,
    spec: PipelineSpec,
    inner: MethodRun,
}

impl std::ops::Deref for Run<'_> {
    type Target = MethodRun;

    fn deref(&self) -> &MethodRun {
        &self.inner
    }
}

/// A whole experiment cell as one serializable value: the spec that
/// produced it, the evaluation, and the generated partition. This is the
/// persistence format behind [`Run::save_report`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RunReport {
    /// The spec the run executed.
    pub spec: PipelineSpec,
    /// The run's full evaluation.
    pub eval: EvalReport,
    /// The generated neighborhoods.
    pub partition: Partition,
}

impl<'d> Run<'d> {
    /// The evaluation report (metrics over full/train/test slices and
    /// per neighborhood).
    pub fn eval(&self) -> &EvalReport {
        &self.inner.eval
    }

    /// The generated neighborhoods.
    pub fn partition(&self) -> &Partition {
        &self.inner.partition
    }

    /// The spec this run executed.
    pub fn spec(&self) -> &PipelineSpec {
        &self.spec
    }

    /// The dataset the run was built over.
    pub fn dataset(&self) -> &'d SpatialDataset {
        self.dataset
    }

    /// The underlying pipeline run.
    pub fn inner(&self) -> &MethodRun {
        &self.inner
    }

    /// Consumes the facade wrapper, returning the raw [`MethodRun`].
    pub fn into_inner(self) -> MethodRun {
        self.inner
    }

    /// The per-leaf model snapshot of this run (serving state).
    pub fn snapshot(&self) -> Result<ModelSnapshot, FsiError> {
        self.inner.model_snapshot().map_err(FsiError::from)
    }

    /// Compiles the run into an immutable [`FrozenIndex`].
    ///
    /// Tree-backed methods (`MedianKd`, `FairKd`, `IterativeFairKd`)
    /// compile the KD-tree directly — bit-identical to calling
    /// [`FrozenIndex::compile`] by hand; the other methods use the
    /// per-cell partition backend ([`FrozenIndex::from_partition`]).
    /// The same rule applies to rebuilds, so every served method can
    /// hot-rebuild with its own spec.
    pub fn freeze(&self) -> Result<FrozenIndex, FsiError> {
        compile_run(&self.inner, self.dataset).map_err(FsiError::from)
    }

    /// Freezes the run and wires it for online serving: a hot-swappable
    /// [`IndexHandle`] plus a [`Rebuilder`] publishing into it.
    pub fn serve(&self) -> Result<Serving<'d>, FsiError> {
        let handle = IndexHandle::new(self.freeze()?);
        let rebuilder = Rebuilder::new(handle.clone());
        Ok(Serving {
            dataset: self.dataset,
            shared_dataset: std::sync::OnceLock::new(),
            spec: self.spec.clone(),
            handle,
            rebuilder,
            cache_spec: None,
            ingest_policy: None,
        })
    }

    /// [`Run::serve`] with a decision cache in front of every service
    /// the deployment builds ([`Serving::service`],
    /// [`Serving::service_over`], [`Serving::listen`]). The cache
    /// spec is validated here, up front; decisions are keyed by (cell,
    /// generation), so hot-swap rebuilds invalidate cached entries
    /// implicitly.
    pub fn serve_with_cache(&self, cache: CacheSpec) -> Result<Serving<'d>, FsiError> {
        cache
            .validate()
            .map_err(|e| FsiError::from(fsi_serve::ServeError::Cache(e)))?;
        let mut serving = self.serve()?;
        serving.cache_spec = Some(cache);
        Ok(serving)
    }

    /// [`Run::serve`] with streaming ingestion enabled on every
    /// coordinator service the deployment builds ([`Serving::service`],
    /// [`Serving::service_over`], [`Serving::listen`]): appended points
    /// land in a delta buffer over the served snapshot, and the
    /// `policy` — validated here, up front — decides when drift,
    /// occupancy or staleness warrants folding them in through a
    /// hot-swap rebuild. Drive maintenance explicitly with
    /// [`QueryService::maintain`], or in the background via
    /// [`Serving::spawn_maintenance`]. Shard services
    /// ([`Serving::service_shard`]) stay write-free: they merge
    /// coordinator-shipped deltas during two-phase rebuilds without any
    /// ingestion state of their own.
    pub fn serve_with_ingest(&self, policy: MaintenanceSpec) -> Result<Serving<'d>, FsiError> {
        policy
            .validate()
            .map_err(|e| FsiError::from(fsi_serve::ServeError::Ingest(e)))?;
        let mut serving = self.serve()?;
        serving.ingest_policy = Some(policy);
        Ok(serving)
    }

    /// The whole cell as a serializable [`RunReport`].
    pub fn report(&self) -> RunReport {
        RunReport {
            spec: self.spec.clone(),
            eval: self.inner.eval.clone(),
            partition: self.inner.partition.clone(),
        }
    }

    /// Writes the [`RunReport`] as pretty-printed JSON to `path`,
    /// creating parent directories as needed.
    pub fn save_report<P: AsRef<Path>>(&self, path: P) -> Result<(), FsiError> {
        let path = path.as_ref();
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        let json = serde_json::to_string_pretty(&self.report())?;
        std::fs::write(path, json)?;
        Ok(())
    }
}

/// A live serving deployment produced by [`Run::serve`]: the handle
/// readers query, and the rebuilder that retrains and hot-swaps.
pub struct Serving<'d> {
    dataset: &'d SpatialDataset,
    /// Lazily materialized shared copy of `dataset` handed to
    /// [`QueryService`]s, so building N services (REPL + HTTP + shards)
    /// deep-clones the dataset once, not N times.
    shared_dataset: std::sync::OnceLock<Arc<SpatialDataset>>,
    spec: PipelineSpec,
    handle: IndexHandle,
    rebuilder: Rebuilder,
    /// Cache configuration applied to every service this deployment
    /// builds; `None` serves uncached. Always validated before it lands
    /// here ([`Run::serve_with_cache`]).
    cache_spec: Option<CacheSpec>,
    /// Maintenance policy enabling streaming ingestion on every
    /// coordinator service this deployment builds; `None` serves
    /// read-only. Always validated before it lands here
    /// ([`Run::serve_with_ingest`]).
    ingest_policy: Option<MaintenanceSpec>,
}

impl Serving<'_> {
    /// The hot-swappable handle serving the compiled index.
    pub fn handle(&self) -> &IndexHandle {
        &self.handle
    }

    /// A per-thread reader over the live index (one atomic load per
    /// snapshot check).
    pub fn reader(&self) -> IndexReader {
        self.handle.reader()
    }

    /// The rebuilder wired into [`Serving::handle`].
    pub fn rebuilder(&self) -> &Rebuilder {
        &self.rebuilder
    }

    /// The spec rebuilds re-execute by default.
    pub fn spec(&self) -> &PipelineSpec {
        &self.spec
    }

    /// Retrains with the original spec on the original dataset and
    /// hot-swaps the result in. Readers never block.
    ///
    /// With the original (immutable) dataset this reproduces the served
    /// index bit-identically; the interesting rebuilds pass fresh data
    /// via [`Serving::rebuild_on`] or a new spec via
    /// [`Serving::rebuild_with`].
    pub fn rebuild(&self) -> Result<RebuildReport, FsiError> {
        self.rebuilder
            .rebuild(self.dataset, &self.spec)
            .map_err(FsiError::from)
    }

    /// Retrains the original spec on *fresh* data (the data-drift path)
    /// and hot-swaps the result in. The dataset must share the grid the
    /// deployment was built over.
    pub fn rebuild_on(&self, dataset: &SpatialDataset) -> Result<RebuildReport, FsiError> {
        self.rebuilder
            .rebuild(dataset, &self.spec)
            .map_err(FsiError::from)
    }

    /// Retrains with a different spec (e.g. a new height after data
    /// drift) and hot-swaps the result in.
    pub fn rebuild_with(&self, spec: &PipelineSpec) -> Result<RebuildReport, FsiError> {
        self.rebuilder
            .rebuild(self.dataset, spec)
            .map_err(FsiError::from)
    }

    /// A [`QueryService`] over this deployment's live handle: the typed
    /// request/response surface every transport (REPL, HTTP, tests)
    /// dispatches through. Rebuild requests retrain on this deployment's
    /// dataset; hot-swaps through [`Serving::rebuild`] and through the
    /// service are visible to each other because they share the handle.
    pub fn service(&self) -> QueryService {
        self.apply_ingest(
            self.apply_cache(
                QueryService::new(Topology::single(self.handle.clone()))
                    .with_rebuild(self.shared_dataset()),
            ),
        )
    }

    /// The decision-cache configuration services are built with, when
    /// the deployment was created via [`Run::serve_with_cache`].
    pub fn cache_spec(&self) -> Option<&CacheSpec> {
        self.cache_spec.as_ref()
    }

    /// The maintenance policy coordinator services are built with, when
    /// the deployment was created via [`Run::serve_with_ingest`].
    pub fn ingest_policy(&self) -> Option<&MaintenanceSpec> {
        self.ingest_policy.as_ref()
    }

    /// Spawns a background maintenance thread over a clone of
    /// `service`: clones share the delta buffer and index handles, so a
    /// rebuild published by the thread is served by `service` (and any
    /// other clone) immediately. Returns the handle that stops the
    /// thread; dropping it stops the thread too.
    ///
    /// # Errors
    ///
    /// Fails when the deployment was not created via
    /// [`Run::serve_with_ingest`], or when `service` itself has no
    /// ingestion state (e.g. a shard service).
    pub fn spawn_maintenance(&self, service: &QueryService) -> Result<MaintenanceHandle, FsiError> {
        let Some(policy) = &self.ingest_policy else {
            return Err(FsiError::from(fsi_serve::ServeError::IngestUnavailable));
        };
        MaintenanceHandle::spawn(service.clone(), policy.clone(), self.spec.clone())
            .map_err(FsiError::from)
    }

    /// Attaches the deployment's cache spec (if any) to a service.
    fn apply_cache(&self, service: QueryService) -> QueryService {
        match self.cache_spec {
            Some(spec) => service
                .with_cache(spec)
                .expect("cache spec validated when the deployment was created"),
            None => service,
        }
    }

    /// Enables streaming ingestion on a coordinator service when the
    /// deployment was configured for it.
    fn apply_ingest(&self, service: QueryService) -> QueryService {
        match &self.ingest_policy {
            Some(_) => service
                .with_ingest(self.spec.task.clone())
                .expect("every deployment service carries its rebuild dataset"),
            None => service,
        }
    }

    /// The dataset copy services rebuild on — deep-cloned at most once
    /// per deployment, then shared by `Arc`.
    fn shared_dataset(&self) -> Arc<SpatialDataset> {
        self.shared_dataset
            .get_or_init(|| Arc::new(self.dataset.clone()))
            .clone()
    }

    /// The canonical sharded deployment path: a coordinator
    /// [`QueryService`] over the [`Topology`] a validated
    /// [`TopologySpec`] describes. `local` slots serve **partial
    /// indexes** clipped from the current snapshot
    /// ([`fsi_serve::FrozenIndex::compile_clipped`]), so per-shard heap
    /// scales down with shard count; `http://host:port` slots are dialed
    /// eagerly with the keep-alive [`crate::http::RemoteShard`] client.
    /// The shards are detached from [`Serving::handle`] — a deployment
    /// that shards its serving plane rebuilds *through the service*
    /// (one-box `Rebuild`, or the two-phase `RebuildPrepare` /
    /// `RebuildCommit` pair over remote fleets), not through
    /// [`Serving::rebuild`].
    pub fn service_over(&self, spec: &TopologySpec) -> Result<QueryService, FsiError> {
        let index = self.handle.load().as_ref().clone();
        let topology = Topology::from_spec(spec, index, crate::http::RemoteShard::connector())
            .map_err(FsiError::from)?;
        Ok(self.apply_ingest(
            self.apply_cache(QueryService::new(topology).with_rebuild(self.shared_dataset())),
        ))
    }

    /// [`Serving::service_over`] with a resilience `policy`: topology
    /// slots of the `{"replicas": [...]}` form are wrapped in an
    /// [`fsi_resil::ReplicaSet`] (retries, hedging, per-replica circuit
    /// breakers — see [`crate::http::ResilientConnector`]), and every
    /// HTTP member dials through a [`crate::http::RemoteShard`] whose
    /// reconnect budget follows the policy's attempt budget. Specs
    /// without replica slots build identically to
    /// [`Serving::service_over`].
    pub fn service_over_with(
        &self,
        spec: &TopologySpec,
        policy: fsi_resil::ResiliencePolicy,
    ) -> Result<QueryService, FsiError> {
        let reconnects = policy.max_attempts.max(1);
        let connector =
            crate::http::ResilientConnector::new(policy).with_reconnect_attempts(reconnects);
        let index = self.handle.load().as_ref().clone();
        let topology = Topology::from_spec(spec, index, connector).map_err(FsiError::from)?;
        Ok(self.apply_ingest(
            self.apply_cache(QueryService::new(topology).with_rebuild(self.shared_dataset())),
        ))
    }

    /// The service a **shard server** runs for slot `shard` of the
    /// topology `spec` describes: a single-shard service over the
    /// partial index clipped to that slot's sub-rectangle. A coordinator
    /// built by [`Serving::service_over`] (here or on another machine)
    /// routes this slot's traffic — including two-phase rebuilds — to
    /// it over HTTP.
    pub fn service_shard(
        &self,
        spec: &TopologySpec,
        shard: usize,
    ) -> Result<QueryService, FsiError> {
        spec.validate().map_err(FsiError::from)?;
        let index = self.handle.load();
        let topology = Topology::partial(index.as_ref(), spec.rows, spec.cols, shard)
            .map_err(FsiError::from)?;
        Ok(self.apply_cache(QueryService::new(topology).with_rebuild(self.shared_dataset())))
    }

    /// A service over a fresh `rows × cols` topology seeded with
    /// **replicas** of the current snapshot — the pre-topology
    /// semantics, kept as a migration shim and equivalence-tested
    /// against [`Serving::service_over`].
    #[deprecated(
        since = "0.7.0",
        note = "use `service_over(&TopologySpec::local(rows, cols))` — partial indexes \
                instead of full replicas"
    )]
    pub fn service_sharded(&self, rows: usize, cols: usize) -> Result<QueryService, FsiError> {
        let index = self.handle.load().as_ref().clone();
        let topology = Topology::replicated(index, rows, cols).map_err(FsiError::from)?;
        Ok(self.apply_cache(QueryService::new(topology).with_rebuild(self.shared_dataset())))
    }

    /// Attaches the HTTP/1.1 JSON transport to this deployment: binds
    /// `addr` (use port `0` for an ephemeral port) and serves
    /// [`Serving::service`] from a small worker thread pool. This is the
    /// network frontend plug-in point the roadmap designates.
    pub fn listen(&self, addr: impl ToSocketAddrs) -> Result<crate::http::HttpServer, FsiError> {
        crate::http::HttpServer::bind(self.service(), addr).map_err(FsiError::from)
    }

    /// [`Serving::listen`] with an explicit worker-thread count (= the
    /// maximum number of concurrently served keep-alive connections).
    pub fn listen_with(
        &self,
        addr: impl ToSocketAddrs,
        workers: usize,
    ) -> Result<crate::http::HttpServer, FsiError> {
        crate::http::HttpServer::bind_with(self.service(), addr, workers).map_err(FsiError::from)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fsi_data::synth::city::{CityConfig, CityGenerator};
    use fsi_geo::Point;

    fn dataset() -> SpatialDataset {
        CityGenerator::new(CityConfig {
            n_individuals: 250,
            grid_side: 16,
            seed: 11,
            ..CityConfig::default()
        })
        .unwrap()
        .generate()
        .unwrap()
    }

    #[test]
    fn builder_chain_runs_and_derefs() {
        let d = dataset();
        let run = Pipeline::on(&d)
            .task(TaskSpec::act())
            .method(Method::MedianKd)
            .height(3)
            .model(ModelKind::Logistic)
            .seed(7)
            .run()
            .unwrap();
        // Facade accessors and Deref both reach the run.
        assert_eq!(run.eval().full.n, d.len());
        assert_eq!(run.scores.len(), d.len());
        assert_eq!(run.partition().num_regions(), run.eval.num_regions);
        assert_eq!(run.spec().method, Method::MedianKd);
    }

    #[test]
    fn invalid_chains_fail_on_run_without_work() {
        let d = dataset();
        assert!(Pipeline::on(&d).height(0).run().is_err());
        assert!(Pipeline::on(&d).test_fraction(1.0).validate().is_err());
        assert!(Pipeline::on(&d)
            .method(Method::FairKd)
            .reweight_blocks(4, 4)
            .run()
            .is_err());
    }

    #[test]
    fn freeze_serves_the_run_partition_for_every_method() {
        let d = dataset();
        for method in [Method::FairKd, Method::GridReweight, Method::ZipCode] {
            let run = Pipeline::on(&d).method(method).height(3).run().unwrap();
            let index = run.freeze().unwrap();
            assert_eq!(index.num_leaves(), run.partition().num_regions());
            for (i, p) in d.locations().iter().enumerate().take(40) {
                let expected = run.partition().region_of(d.cells()[i]);
                assert_eq!(index.lookup(p).unwrap().leaf_id, expected, "{method:?}");
            }
        }
    }

    #[test]
    fn non_tree_deployments_can_rebuild_with_their_own_spec() {
        let d = dataset();
        let serving = Pipeline::on(&d)
            .method(Method::GridReweight)
            .height(4)
            .run()
            .unwrap()
            .serve()
            .unwrap();
        assert_eq!(serving.handle().load().backend_name(), "cells");
        let report = serving.rebuild().unwrap();
        assert_eq!(report.generation, 2);
        assert_eq!(report.num_leaves, 16);
        assert!(serving
            .reader()
            .snapshot()
            .lookup(&Point::new(0.5, 0.5))
            .is_some());
    }

    #[test]
    fn serve_wires_a_rebuilder_over_the_same_spec() {
        let d = dataset();
        let run = Pipeline::on(&d).height(3).run().unwrap();
        let serving = run.serve().unwrap();
        assert_eq!(serving.handle().generation(), 1);
        let before = serving.handle().load().num_leaves();
        let report = serving.rebuild().unwrap();
        assert_eq!(report.generation, 2);
        assert_eq!(report.num_leaves, before);
        assert_eq!(&report.spec, serving.spec());
        // A different spec hot-swaps a different shape in.
        let taller = PipelineSpec {
            height: 4,
            ..serving.spec().clone()
        };
        let report = serving.rebuild_with(&taller).unwrap();
        assert_eq!(report.generation, 3);
        assert!(report.num_leaves > before);
        assert!(serving
            .reader()
            .snapshot()
            .lookup(&Point::new(0.5, 0.5))
            .is_some());
    }

    #[test]
    fn rebuild_on_fresh_data_changes_the_served_scores() {
        let d = dataset();
        let serving = Pipeline::on(&d).height(3).run().unwrap().serve().unwrap();
        let p = Point::new(0.5, 0.5);
        let before = serving.handle().load().lookup(&p).unwrap();
        // Fresh data over the same grid shape: a different city draw.
        let drifted = CityGenerator::new(CityConfig {
            n_individuals: 250,
            grid_side: 16,
            seed: 12,
            ..CityConfig::default()
        })
        .unwrap()
        .generate()
        .unwrap();
        let report = serving.rebuild_on(&drifted).unwrap();
        assert_eq!(report.generation, 2);
        let after = serving.handle().load().lookup(&p).unwrap();
        assert_ne!(before.raw_score, after.raw_score);
    }

    #[test]
    fn serve_with_cache_caches_every_service_and_answers_identically() {
        use fsi_proto::{Request, Response};
        let d = dataset();
        let run = Pipeline::on(&d).height(3).run().unwrap();
        let cached_serving = run.serve_with_cache(CacheSpec::per_worker(256)).unwrap();
        assert_eq!(cached_serving.cache_spec().unwrap().capacity, 256);
        let mut cached = cached_serving.service();
        let mut uncached = run.serve().unwrap().service();
        assert!(cached.cache_spec().is_some());
        assert!(uncached.cache_spec().is_none());
        // Two passes over the same points: identical answers, and the
        // second pass is served from the cache.
        for _pass in 0..2 {
            for p in d.locations().iter().take(32) {
                let req = Request::Lookup { x: p.x, y: p.y };
                assert_eq!(cached.dispatch(&req), uncached.dispatch(&req));
            }
        }
        let Response::Stats { stats } = cached.dispatch(&Request::Stats) else {
            panic!("stats must answer");
        };
        let cache = stats.cache.expect("cached service must report cache stats");
        assert!(cache.hits >= 32, "{cache:?}");
        assert_eq!(cache.hits + cache.misses, 64, "{cache:?}");
        let Response::Stats { stats } = uncached.dispatch(&Request::Stats) else {
            panic!("stats must answer");
        };
        assert!(stats.cache.is_none());
        // The sharded service plane inherits the same cache spec.
        let mut sharded = cached_serving
            .service_over(&TopologySpec::local(2, 2))
            .unwrap();
        assert_eq!(sharded.cache_spec().unwrap().capacity, 256);
        for p in d.locations().iter().take(8) {
            let req = Request::Lookup { x: p.x, y: p.y };
            assert_eq!(sharded.dispatch(&req), uncached.dispatch(&req));
        }
    }

    /// The deprecated replica path and the canonical topology path must
    /// answer every query identically — the migration contract.
    #[test]
    fn deprecated_sharded_service_matches_service_over() {
        use fsi_proto::Request;
        let d = dataset();
        let serving = Pipeline::on(&d).height(3).run().unwrap().serve().unwrap();
        #[allow(deprecated)]
        let mut replicas = serving.service_sharded(2, 2).unwrap();
        let mut partials = serving.service_over(&TopologySpec::local(2, 2)).unwrap();
        for p in d.locations().iter().take(64) {
            let req = Request::Lookup { x: p.x, y: p.y };
            assert_eq!(replicas.dispatch(&req), partials.dispatch(&req));
        }
        for rect in [
            fsi_proto::WireRect::new(0.0, 0.0, 1.0, 1.0),
            fsi_proto::WireRect::new(0.2, 0.2, 0.8, 0.4),
        ] {
            let req = Request::RangeQuery { rect };
            assert_eq!(replicas.dispatch(&req), partials.dispatch(&req));
        }
        // The partial plane is the smaller one, per shard.
        let full_heap = serving.handle().load().heap_bytes();
        for backend in partials.topology().backends() {
            let local = backend.as_local().unwrap();
            assert!(local.handle().load().heap_bytes() < full_heap);
        }
    }

    /// A shard server over `Topology::partial` answers its own slot's
    /// points exactly like the coordinator's local shards would.
    #[test]
    fn shard_service_serves_its_slot_of_the_topology() {
        use fsi_proto::{Request, Response};
        let d = dataset();
        let serving = Pipeline::on(&d).height(3).run().unwrap().serve().unwrap();
        let spec = TopologySpec::local(2, 2);
        let mut whole = serving.service();
        let mut shard = serving.service_shard(&spec, 0).unwrap();
        // Shard 0 owns the south-west quadrant.
        match (
            shard.dispatch(&Request::Lookup { x: 0.1, y: 0.1 }),
            whole.dispatch(&Request::Lookup { x: 0.1, y: 0.1 }),
        ) {
            (Response::Decision { decision: got }, Response::Decision { decision: want }) => {
                assert_eq!(got, want)
            }
            other => panic!("expected decisions, got {other:?}"),
        }
        // The opposite corner is outside its clip.
        match shard.dispatch(&Request::Lookup { x: 0.95, y: 0.95 }) {
            Response::Error { error } => {
                assert_eq!(error.code, fsi_proto::ErrorCode::OutOfBounds)
            }
            other => panic!("expected error, got {other:?}"),
        }
        assert!(serving.service_shard(&spec, 4).is_err());
    }

    #[test]
    fn invalid_cache_specs_fail_at_serve_time() {
        let d = dataset();
        let run = Pipeline::on(&d).height(3).run().unwrap();
        let err = run
            .serve_with_cache(CacheSpec::per_worker(0))
            .err()
            .expect("zero capacity must be rejected");
        assert!(err.to_string().contains("cache"), "{err}");
        let mut bad = CacheSpec::shared(64);
        bad.shards = 3; // not a power of two
        assert!(run.serve_with_cache(bad).is_err());
    }

    #[test]
    fn report_round_trips_through_json() {
        let d = dataset();
        let run = Pipeline::on(&d).height(3).run().unwrap();
        let json = serde_json::to_string(&run.report()).unwrap();
        let back: RunReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back.spec, *run.spec());
        assert_eq!(back.partition, *run.partition());
        assert_eq!(back.eval.full.n, run.eval().full.n);
    }
}
