//! # fsi — the fair spatial indexing facade
//!
//! One fluent, validated API for the whole lifecycle the paper describes
//! — dataset → fair index → calibrated decisions → served index:
//!
//! ```text
//! Pipeline::on(&dataset)        // fsi-data
//!     .task(TaskSpec::act())    // what to predict
//!     .method(Method::FairKd)   // how to partition (Algorithm 1)
//!     .height(10)               // region budget 2^h
//!     .model(ModelKind::Logistic)
//!     .seed(7)
//!     .run()?                   // validate, build, train, evaluate
//!     .serve()?                 // freeze + hot-swappable handle
//! ```
//!
//! [`Pipeline::run`] yields a [`Run`]: its [`Run::eval`] carries the
//! fairness metrics (ENCE et al.), [`Run::partition`] the generated
//! neighborhoods, [`Run::freeze`] compiles the immutable serving index,
//! [`Run::serve`] wires it into a lock-free [`IndexHandle`] with a
//! [`Rebuilder`], and [`Run::save_report`] persists the whole cell as
//! one JSON value. [`MultiPipeline`] is the multi-objective counterpart
//! (one districting, several tasks). Everything returns the single
//! [`FsiError`] type.
//!
//! Online queries speak the **typed protocol** (`fsi-proto`): every
//! transport decodes to a [`Request`], dispatches through a
//! [`QueryService`], and encodes the [`Response`]. A service fronts a
//! [`Topology`] of shard backends — in-process partial indexes or
//! remote `http://host:port` shard servers, described by a validated
//! [`TopologySpec`] and built with [`Serving::service_over`].
//! [`Serving::listen`] attaches the built-in HTTP/1.1 JSON transport
//! ([`http`]); [`repl`] is the line-oriented text transport behind
//! `redistricting_cli serve`. All transports are differentially tested
//! to answer bit-identically.
//!
//! Under the hood each stage lives in a focused crate (`fsi-geo`,
//! `fsi-core`, `fsi-ml`, `fsi-data`, `fsi-fairness`, `fsi-pipeline`,
//! `fsi-serve`); this crate re-exports the types an application needs so
//! most callers depend on `fsi` alone. A builder chain is just sugar
//! over a serde-round-trippable [`PipelineSpec`], so a whole experiment
//! cell can be stored, diffed and replayed as one JSON object
//! ([`Pipeline::from_spec`]).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod error;
pub mod http;
pub mod multi;
pub mod pipeline;
pub mod repl;

pub use error::FsiError;
pub use http::{scrape_metrics, HttpClient, HttpServer, RemoteShard, ResilientConnector};
pub use multi::{MultiPipeline, MultiRun};
pub use pipeline::{Pipeline, Run, RunReport, Serving};

// The vocabulary types of the builder surface, re-exported so callers
// need only this crate.
pub use fsi_core::TieBreak;
pub use fsi_data::{LocationEncoding, SpatialDataset};
pub use fsi_geo::{Partition, Point, Rect};
pub use fsi_pipeline::{
    snapshot_for_partition, EvalReport, Method, MethodRun, ModelKind, ModelSnapshot,
    MultiObjectiveRun, MultiObjectiveSpec, PartitionModel, PipelineSpec, RunConfig, TaskSpec,
};
pub use fsi_proto::{
    decode_request, decode_response, encode_request, encode_response, CacheStatsBody, DecisionBody,
    ErrorBody, ErrorCode, HealthBody, HttpObsBody, IngestBody, IngestObsBody, MetricsBody,
    PreparedBody, ProtoError, RebuildObsBody, ReplicaHealthBody, Request, RequestKindMetrics,
    Response, ShardHealthBody, ShardObsBody, ShardStatsBody, StatsBody, WirePoint, WireRect,
    PROTO_VERSION,
};
pub use fsi_resil::{
    ChaosShard, ChaosSwitch, CircuitBreaker, ReplicaSet, ResilError, ResiliencePolicy,
};
pub use fsi_serve::{
    prometheus_text, BackendSpec, CacheError, CacheScope, CacheSpec, CacheStats, Decision,
    FrozenIndex, IndexHandle, IndexReader, IngestError, LocalShard, MaintenanceHandle,
    MaintenanceSpec, MaintenanceTrigger, QueryService, RebuildReport, Rebuilder, ShardBackend,
    ShardDescriptor, SlotConnector, SlowQueryRecord, SlowQuerySink, Topology, TopologySpec,
    TransportStats,
};
