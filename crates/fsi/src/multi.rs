//! Multi-objective pipelines: one districting serving several tasks.
//!
//! [`MultiPipeline`] is the fluent counterpart of
//! [`fsi_pipeline::run_multi_spec`]: it assembles a validated
//! [`MultiObjectiveSpec`] (tasks, priorities, method, height) and
//! executes it into a [`MultiRun`].

use crate::error::FsiError;
use fsi_data::SpatialDataset;
use fsi_geo::Partition;
use fsi_pipeline::{
    run_multi_spec, EvalReport, Method, ModelKind, MultiObjectiveRun, MultiObjectiveSpec,
    RunConfig, TaskSpec,
};

/// Fluent builder for one multi-objective execution (Figure 10's
/// Multi-Objective Fair KD-tree and its baselines).
///
/// ```
/// use fsi::{Method, MultiPipeline, TaskSpec};
///
/// let dataset = fsi_data::synth::city::CityGenerator::new(
///     fsi_data::synth::city::CityConfig {
///         n_individuals: 200,
///         grid_side: 16,
///         seed: 1,
///         ..Default::default()
///     },
/// )
/// .unwrap()
/// .generate()
/// .unwrap();
///
/// let run = MultiPipeline::on(&dataset)
///     .task(TaskSpec::act(), 0.5)
///     .task(TaskSpec::employment(), 0.5)
///     .method(Method::FairKd)
///     .height(3)
///     .run()
///     .unwrap();
/// assert_eq!(run.per_task().len(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct MultiPipeline<'d> {
    dataset: &'d SpatialDataset,
    spec: MultiObjectiveSpec,
}

impl<'d> MultiPipeline<'d> {
    /// Starts a multi-objective pipeline over `dataset` with no tasks
    /// yet (add at least one with [`MultiPipeline::task`]).
    pub fn on(dataset: &'d SpatialDataset) -> Self {
        Self {
            dataset,
            spec: MultiObjectiveSpec::new(Vec::new(), Vec::new(), Method::FairKd, 6),
        }
    }

    /// Starts from a fully assembled spec (e.g. one restored from JSON).
    pub fn from_spec(dataset: &'d SpatialDataset, spec: MultiObjectiveSpec) -> Self {
        Self { dataset, spec }
    }

    /// Appends a task with its priority weight `alpha` (all alphas must
    /// sum to 1).
    pub fn task(mut self, task: TaskSpec, alpha: f64) -> Self {
        self.spec.tasks.push(task);
        self.spec.alphas.push(alpha);
        self
    }

    /// Replaces the whole task list (pair with
    /// [`MultiPipeline::alphas`]).
    pub fn tasks(mut self, tasks: Vec<TaskSpec>) -> Self {
        self.spec.tasks = tasks;
        self
    }

    /// Replaces the whole priority vector, aligned with the tasks.
    pub fn alphas(mut self, alphas: Vec<f64>) -> Self {
        self.spec.alphas = alphas;
        self
    }

    /// Sets the partitioning method (`FairKd` runs the multi-objective
    /// tree; `MedianKd` / `GridReweight` are the baselines).
    pub fn method(mut self, method: Method) -> Self {
        self.spec.method = method;
        self
    }

    /// Sets the tree height.
    pub fn height(mut self, height: usize) -> Self {
        self.spec.height = height;
        self
    }

    /// Sets the classifier family.
    pub fn model(mut self, model: ModelKind) -> Self {
        self.spec.config.model = model;
        self
    }

    /// Sets the seed for the train/test split.
    pub fn seed(mut self, seed: u64) -> Self {
        self.spec.config.seed = seed;
        self
    }

    /// Replaces the whole shared [`RunConfig`] at once.
    pub fn config(mut self, config: RunConfig) -> Self {
        self.spec.config = config;
        self
    }

    /// The spec assembled so far.
    pub fn spec(&self) -> &MultiObjectiveSpec {
        &self.spec
    }

    /// Validates the assembled spec without running anything.
    pub fn validate(&self) -> Result<(), FsiError> {
        self.spec.validate().map_err(FsiError::from)
    }

    /// Executes the multi-objective pipeline: validate, build one shared
    /// districting, train and evaluate one model per task.
    pub fn run(self) -> Result<MultiRun, FsiError> {
        let inner = run_multi_spec(self.dataset, &self.spec)?;
        Ok(MultiRun {
            spec: self.spec,
            inner,
        })
    }
}

/// A finished multi-objective execution. Dereferences to the underlying
/// [`MultiObjectiveRun`].
#[derive(Debug, Clone)]
pub struct MultiRun {
    spec: MultiObjectiveSpec,
    inner: MultiObjectiveRun,
}

impl std::ops::Deref for MultiRun {
    type Target = MultiObjectiveRun;

    fn deref(&self) -> &MultiObjectiveRun {
        &self.inner
    }
}

impl MultiRun {
    /// Per-task evaluations, aligned with the spec's task order.
    pub fn per_task(&self) -> &[(TaskSpec, EvalReport)] {
        &self.inner.per_task
    }

    /// The single districting shared by all tasks.
    pub fn partition(&self) -> &Partition {
        &self.inner.partition
    }

    /// The spec this run executed.
    pub fn spec(&self) -> &MultiObjectiveSpec {
        &self.spec
    }

    /// The underlying run.
    pub fn inner(&self) -> &MultiObjectiveRun {
        &self.inner
    }

    /// Consumes the wrapper, returning the raw [`MultiObjectiveRun`].
    pub fn into_inner(self) -> MultiObjectiveRun {
        self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fsi_data::synth::city::{CityConfig, CityGenerator};

    fn dataset() -> SpatialDataset {
        CityGenerator::new(CityConfig {
            n_individuals: 250,
            grid_side: 16,
            seed: 11,
            ..CityConfig::default()
        })
        .unwrap()
        .generate()
        .unwrap()
    }

    #[test]
    fn builder_runs_two_tasks_over_one_partition() {
        let d = dataset();
        let run = MultiPipeline::on(&d)
            .task(TaskSpec::act(), 0.5)
            .task(TaskSpec::employment(), 0.5)
            .method(Method::FairKd)
            .height(3)
            .run()
            .unwrap();
        assert_eq!(run.per_task().len(), 2);
        for (_, eval) in run.per_task() {
            assert_eq!(eval.num_regions, run.partition().num_regions());
        }
        assert_eq!(run.spec().alphas, vec![0.5, 0.5]);
    }

    #[test]
    fn invalid_multis_are_rejected_before_work() {
        let d = dataset();
        assert!(MultiPipeline::on(&d).run().is_err()); // no tasks
        assert!(MultiPipeline::on(&d)
            .task(TaskSpec::act(), 0.9)
            .task(TaskSpec::employment(), 0.9)
            .validate()
            .is_err());
        assert!(MultiPipeline::on(&d)
            .task(TaskSpec::act(), 1.0)
            .method(Method::ZipCode)
            .run()
            .is_err());
    }
}
