//! A dependency-free HTTP/1.1 JSON transport over the typed query
//! protocol.
//!
//! [`HttpServer`] binds a `std::net::TcpListener`, accepts connections
//! on a small worker thread pool, and answers `POST /query` (or `/`)
//! requests whose body is one [`fsi_proto::RequestEnvelope`] with the
//! matching [`fsi_proto::ResponseEnvelope`] — content-length framing,
//! keep-alive by default, no external crates (consistent with the
//! workspace's vendored-stubs constraint). Every worker owns a
//! [`QueryService`] clone, so dispatch runs lock-free against the shared
//! hot-swappable indexes.
//!
//! ```text
//! POST /query HTTP/1.1
//! Content-Length: 46
//!
//! {"v":1,"body":{"Lookup":{"x":0.31,"y":0.72}}}
//! ```
//!
//! Status mapping: a request that *decodes* — even one answered with a
//! structured [`fsi_proto::ErrorBody`], like an out-of-bounds point —
//! is a successful protocol exchange and returns `200`. Only transport
//! failures map to HTTP errors: undecodable envelopes are `400`,
//! non-`POST` methods `405`, unknown paths `404`, missing
//! `Content-Length` `411`, oversized bodies `413`.
//!
//! [`HttpClient`] is the matching blocking keep-alive client, used by
//! the differential transport tests, the benchmark suite and the CI
//! smoke step.
//!
//! ## Observability
//!
//! `GET /metrics` answers the Prometheus text exposition of the served
//! [`QueryService`]'s telemetry (scatter-gathered across shards),
//! extended with transport-level families: connection totals, requests
//! handled, and read/handle/write phase histograms. The same transport
//! block rides along as [`fsi_proto::HttpObsBody`] inside every
//! `Response::Metrics` answered over this server. Phase timings start
//! once a request head has arrived, so idle keep-alive wait is never
//! recorded as read time.

use crate::error::FsiError;
use fsi_obs::{Counter, Histogram, HistogramSnapshot, Recorder, Registry};
use fsi_proto::{
    decode_request, decode_response, encode_response, ErrorBody, ErrorCode, HttpObsBody,
    ProtoError, Request, Response,
};
use fsi_resil::{ReplicaSet, ResiliencePolicy};
use fsi_serve::{
    prometheus_text, QueryService, ServeError, ShardBackend, ShardDescriptor, SlotConnector,
    TransportStats,
};
use std::io::{BufRead, BufReader, ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Largest accepted request body. Far above any sane batch (a 100k-point
/// `LookupBatch` is ~4 MB) while bounding a malicious content-length.
const MAX_BODY_BYTES: usize = 16 * 1024 * 1024;

/// Largest accepted request-line or header line. Head parsing enforces
/// this *while* receiving, so an endless unterminated line cannot grow
/// a worker's memory.
const MAX_HEAD_LINE_BYTES: usize = 8 * 1024;

/// Most headers accepted in one request head.
const MAX_HEADERS: usize = 100;

/// How often blocked I/O wakes up to check the shutdown flag.
const POLL_INTERVAL: Duration = Duration::from_millis(50);

/// Content type of the Prometheus text exposition.
const METRICS_CONTENT_TYPE: &str = "text/plain; version=0.0.4; charset=utf-8";

/// Per-worker HTTP transport telemetry, merged on scrape through the
/// server's [`Registry`]. Active connections are derived as
/// `opened - closed` (both cumulative, so the difference is exact even
/// across worker shards).
struct HttpMetrics {
    opened: Counter,
    closed: Counter,
    requests: Counter,
    read: Histogram,
    handle: Histogram,
    write: Histogram,
}

impl HttpMetrics {
    fn new() -> Self {
        Self {
            opened: Counter::new(),
            closed: Counter::new(),
            requests: Counter::new(),
            read: Histogram::new(),
            handle: Histogram::new(),
            write: Histogram::new(),
        }
    }
}

/// Nanoseconds in `d`, saturating instead of wrapping on absurd spans.
fn elapsed_nanos(started: Instant) -> u64 {
    started.elapsed().as_nanos().min(u64::MAX as u128) as u64
}

/// Folds every worker shard into one wire-ready transport block.
/// Histograms are read before counters so a concurrent scrape can only
/// under-report phases relative to `requests`, never the reverse.
fn http_obs_body(registry: &Registry<HttpMetrics>) -> HttpObsBody {
    let (read, handle, write) = registry.fold(
        (
            HistogramSnapshot::empty(),
            HistogramSnapshot::empty(),
            HistogramSnapshot::empty(),
        ),
        |(mut r, mut h, mut w), shard| {
            r.merge(&shard.read.snapshot());
            h.merge(&shard.handle.snapshot());
            w.merge(&shard.write.snapshot());
            (r, h, w)
        },
    );
    let (opened, closed, requests) = registry.fold((0u64, 0u64, 0u64), |(o, c, q), shard| {
        (
            o + shard.opened.get(),
            c + shard.closed.get(),
            q + shard.requests.get(),
        )
    });
    HttpObsBody {
        connections: opened,
        active: opened.saturating_sub(closed),
        requests,
        read,
        handle,
        write,
    }
}

/// A running HTTP serving endpoint. Dropping it (or calling
/// [`HttpServer::shutdown`]) stops the accept loop, drains the workers
/// and joins every thread.
pub struct HttpServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl HttpServer {
    /// Binds `addr` (use port 0 for an ephemeral port) and serves
    /// `service` with 4 worker threads.
    pub fn bind(service: QueryService, addr: impl ToSocketAddrs) -> std::io::Result<Self> {
        Self::bind_with(service, addr, 4)
    }

    /// Binds with an explicit worker count. Each worker owns one
    /// `service` clone and one connection at a time, so `workers` is
    /// also the maximum number of concurrently served keep-alive
    /// connections; further connections queue until a worker frees up.
    pub fn bind_with(
        service: QueryService,
        addr: impl ToSocketAddrs,
        workers: usize,
    ) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let (tx, rx): (Sender<TcpStream>, Receiver<TcpStream>) = channel();
        let rx = Arc::new(Mutex::new(rx));
        let obs = Registry::new(HttpMetrics::new).recorder();

        let workers = (0..workers.max(1))
            .map(|_| {
                let rx = Arc::clone(&rx);
                let stop = Arc::clone(&stop);
                let mut service = service.clone();
                // Each worker records into its own registry shard.
                let obs = obs.clone();
                std::thread::spawn(move || loop {
                    // Holding the lock only while receiving: the queue is
                    // the only shared state between workers.
                    let conn = rx.lock().unwrap_or_else(|e| e.into_inner()).recv();
                    match conn {
                        Ok(stream) => {
                            obs.opened.inc();
                            // Connection errors are that connection's
                            // problem; the worker moves on to the next.
                            let _ = serve_connection(stream, &mut service, &stop, &obs);
                            obs.closed.inc();
                        }
                        // Sender dropped: the server is shutting down.
                        Err(_) => return,
                    }
                })
            })
            .collect();

        let accept = {
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                for stream in listener.incoming() {
                    if stop.load(Ordering::Acquire) {
                        return; // drops the listener and the sender
                    }
                    if let Ok(stream) = stream {
                        if tx.send(stream).is_err() {
                            return;
                        }
                    }
                }
            })
        };

        Ok(Self {
            addr,
            stop,
            accept: Some(accept),
            workers,
        })
    }

    /// The bound address (with the real port when bound to port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting, drains the workers and joins every thread.
    /// In-flight requests finish; idle keep-alive connections close
    /// within one poll interval.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        self.stop.store(true, Ordering::Release);
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

impl Drop for HttpServer {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

/// Reads one `\n`-terminated line into `buf`, retrying on read timeouts
/// until data arrives, EOF, or the stop flag is raised. Returns `Ok(0)`
/// on EOF/stop, and errors once the line exceeds `max_len` — a head
/// line that long is an attack on worker memory, not a request.
fn read_line_polling(
    reader: &mut BufReader<TcpStream>,
    buf: &mut String,
    stop: &AtomicBool,
    max_len: usize,
) -> std::io::Result<usize> {
    let mut raw: Vec<u8> = Vec::new();
    loop {
        // fill_buf (not read_line) so the length cap applies *while*
        // receiving: one endless unterminated line can never grow past
        // max_len + one buffer fill.
        let (done, used) = {
            let available = match reader.fill_buf() {
                Ok(available) => available,
                Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
                    if stop.load(Ordering::Acquire) {
                        return Ok(0);
                    }
                    continue;
                }
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            };
            if available.is_empty() {
                (true, 0) // EOF
            } else if let Some(pos) = available.iter().position(|&b| b == b'\n') {
                raw.extend_from_slice(&available[..=pos]);
                (true, pos + 1)
            } else {
                raw.extend_from_slice(available);
                (false, available.len())
            }
        };
        reader.consume(used);
        if raw.len() > max_len {
            return Err(std::io::Error::new(
                ErrorKind::InvalidData,
                format!("request head line exceeds {max_len} bytes"),
            ));
        }
        if done {
            break;
        }
    }
    buf.push_str(&String::from_utf8_lossy(&raw));
    Ok(raw.len())
}

/// Reads and discards exactly `len` body bytes — used to keep a
/// keep-alive connection framed after answering a request whose body is
/// irrelevant (unknown path, wrong method). Returns `false` on
/// EOF/shutdown.
fn drain_body_polling(
    reader: &mut BufReader<TcpStream>,
    mut len: usize,
    stop: &AtomicBool,
) -> std::io::Result<bool> {
    let mut sink = [0u8; 4096];
    while len > 0 {
        let want = len.min(sink.len());
        match reader.read(&mut sink[..want]) {
            Ok(0) => return Ok(false),
            Ok(n) => len -= n,
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
                if stop.load(Ordering::Acquire) {
                    return Ok(false);
                }
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    Ok(true)
}

/// Reads exactly `len` body bytes, retrying on read timeouts.
fn read_body_polling(
    reader: &mut BufReader<TcpStream>,
    len: usize,
    stop: &AtomicBool,
) -> std::io::Result<Option<Vec<u8>>> {
    let mut body = vec![0u8; len];
    let mut read = 0;
    while read < len {
        match reader.read(&mut body[read..]) {
            Ok(0) => return Ok(None), // peer hung up mid-body
            Ok(n) => read += n,
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
                if stop.load(Ordering::Acquire) {
                    return Ok(None);
                }
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    Ok(Some(body))
}

/// One parsed request head.
struct Head {
    method: String,
    path: String,
    content_length: Option<usize>,
    keep_alive: bool,
}

/// Serves one connection until the peer closes, requests `Connection:
/// close`, or the server shuts down.
fn serve_connection(
    stream: TcpStream,
    service: &mut QueryService,
    stop: &AtomicBool,
    obs: &Recorder<HttpMetrics>,
) -> std::io::Result<()> {
    stream.set_read_timeout(Some(POLL_INTERVAL))?;
    stream.set_nodelay(true)?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = stream;

    loop {
        let head = match read_head(&mut reader, stop)? {
            Some(head) => head,
            None => return Ok(()), // EOF or shutdown between requests
        };
        // Counted before any phase is recorded, so a concurrent scrape
        // can never see more phase samples than requests.
        obs.requests.inc();
        // The Prometheus scrape surface sits outside the JSON envelope
        // path: the service's own metrics (scatter-gathered across
        // shards) plus this transport's block, as text exposition.
        if head.method == "GET" && head.path == "/metrics" {
            let handle_started = Instant::now();
            let text = match service.dispatch(&Request::Metrics) {
                Response::Metrics { mut metrics } => {
                    metrics.http = Some(http_obs_body(obs.registry()));
                    prometheus_text(&metrics)
                }
                // Unreachable by construction — Metrics always answers
                // Metrics — but a transport must not panic on protocol
                // drift.
                other => format!("# metrics unavailable: unexpected {other:?}\n"),
            };
            obs.handle.record(elapsed_nanos(handle_started));
            let write_started = Instant::now();
            write_http(
                &mut writer,
                200,
                "OK",
                METRICS_CONTENT_TYPE,
                &text,
                head.keep_alive,
            )?;
            obs.write.record(elapsed_nanos(write_started));
            let body_len = head.content_length.unwrap_or(0);
            if !head.keep_alive || !drain_body_polling(&mut reader, body_len, stop)? {
                return Ok(());
            }
            continue;
        }
        // Transport-level validation, most specific failure first. A
        // rejected request's body must still be consumed, or the next
        // request on this keep-alive connection would be parsed from
        // the middle of the leftover body.
        let reject = if head.method != "POST" {
            Some((
                405,
                "Method Not Allowed",
                format!(
                    "method {} not supported; POST a request envelope",
                    head.method
                ),
            ))
        } else if head.path != "/" && head.path != "/query" {
            Some((
                404,
                "Not Found",
                format!("unknown path {}; POST to /query", head.path),
            ))
        } else {
            None
        };
        if let Some((status, reason, message)) = reject {
            let body_len = head.content_length.unwrap_or(0);
            // An absurd declared length is not worth draining: answer
            // and close instead (keep_alive = false framing).
            let drainable = body_len <= MAX_BODY_BYTES;
            let keep_alive = head.keep_alive && drainable;
            write_http(
                &mut writer,
                status,
                reason,
                "application/json",
                &error_wire(ErrorBody::new(
                    fsi_proto::ErrorCode::MalformedRequest,
                    message,
                )),
                keep_alive,
            )?;
            if !keep_alive || !drain_body_polling(&mut reader, body_len, stop)? {
                return Ok(());
            }
            continue;
        }
        let Some(length) = head.content_length else {
            // Without a length the connection is unframed: answer and close.
            write_http(
                &mut writer,
                411,
                "Length Required",
                "application/json",
                &error_wire(ErrorBody::new(
                    fsi_proto::ErrorCode::MalformedRequest,
                    "a Content-Length header is required",
                )),
                false,
            )?;
            return Ok(());
        };
        if length > MAX_BODY_BYTES {
            write_http(
                &mut writer,
                413,
                "Content Too Large",
                "application/json",
                &error_wire(ErrorBody::new(
                    fsi_proto::ErrorCode::MalformedRequest,
                    format!("request body of {length} bytes exceeds the {MAX_BODY_BYTES} limit"),
                )),
                false,
            )?;
            return Ok(());
        }
        let read_started = Instant::now();
        let Some(body) = read_body_polling(&mut reader, length, stop)? else {
            return Ok(());
        };
        obs.read.record(elapsed_nanos(read_started));

        let handle_started = Instant::now();
        let (status, reason, wire) = match std::str::from_utf8(&body)
            .map_err(|e| ProtoError::Json(format!("body is not UTF-8: {e}")))
            .and_then(decode_request)
        {
            Ok(request) => {
                let mut response = service.dispatch(&request);
                // Metrics answered over this transport carry its block,
                // so wire scrapers see the same picture as /metrics.
                if let Response::Metrics { metrics } = &mut response {
                    metrics.http = Some(http_obs_body(obs.registry()));
                }
                (200, "OK", encode_response(&response))
            }
            Err(e) => (400, "Bad Request", error_wire(ErrorBody::from(&e))),
        };
        obs.handle.record(elapsed_nanos(handle_started));
        let write_started = Instant::now();
        write_http(
            &mut writer,
            status,
            reason,
            "application/json",
            &wire,
            head.keep_alive,
        )?;
        obs.write.record(elapsed_nanos(write_started));
        if !head.keep_alive {
            return Ok(());
        }
    }
}

/// Reads and parses one request head (request line + headers). `None`
/// means a clean EOF / shutdown before a request started.
fn read_head(
    reader: &mut BufReader<TcpStream>,
    stop: &AtomicBool,
) -> std::io::Result<Option<Head>> {
    let mut line = String::new();
    if read_line_polling(reader, &mut line, stop, MAX_HEAD_LINE_BYTES)? == 0 {
        return Ok(None);
    }
    let mut parts = line.split_whitespace();
    let method = parts.next().unwrap_or_default().to_string();
    let path = parts.next().unwrap_or_default().to_string();
    let version = parts.next().unwrap_or("HTTP/1.1");
    // HTTP/1.1 defaults to keep-alive; HTTP/1.0 to close.
    let mut keep_alive = version != "HTTP/1.0";
    let mut content_length = None;
    for headers_seen in 0.. {
        if headers_seen > MAX_HEADERS {
            return Err(std::io::Error::new(
                ErrorKind::InvalidData,
                format!("request head exceeds {MAX_HEADERS} headers"),
            ));
        }
        let mut header = String::new();
        if read_line_polling(reader, &mut header, stop, MAX_HEAD_LINE_BYTES)? == 0 {
            return Ok(None); // EOF mid-head
        }
        let header = header.trim();
        if header.is_empty() {
            break;
        }
        let Some((name, value)) = header.split_once(':') else {
            continue;
        };
        let value = value.trim();
        if name.eq_ignore_ascii_case("content-length") {
            content_length = value.parse::<usize>().ok();
        } else if name.eq_ignore_ascii_case("connection") {
            if value.eq_ignore_ascii_case("close") {
                keep_alive = false;
            } else if value.eq_ignore_ascii_case("keep-alive") {
                keep_alive = true;
            }
        }
    }
    Ok(Some(Head {
        method,
        path,
        content_length,
        keep_alive,
    }))
}

/// The wire form of a transport-level error response.
fn error_wire(error: ErrorBody) -> String {
    encode_response(&Response::Error { error })
}

/// Writes one framed HTTP response.
fn write_http(
    writer: &mut TcpStream,
    status: u16,
    reason: &str,
    content_type: &str,
    body: &str,
    keep_alive: bool,
) -> std::io::Result<()> {
    let connection = if keep_alive { "keep-alive" } else { "close" };
    write!(
        writer,
        "HTTP/1.1 {status} {reason}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: {connection}\r\n\r\n{body}",
        body.len()
    )?;
    writer.flush()
}

/// A blocking keep-alive client for the HTTP transport: one TCP
/// connection, one in-flight request at a time.
pub struct HttpClient {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl HttpClient {
    /// Connects to a running [`HttpServer`].
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Self {
            reader: BufReader::new(stream.try_clone()?),
            writer: stream,
        })
    }

    /// Sends one typed request and decodes the typed response.
    ///
    /// A non-2xx status (the server could not decode the request at
    /// all) surfaces as [`FsiError::Http`]; a decoded
    /// [`Response::Error`] is returned as a normal response for the
    /// caller to match on.
    pub fn call(&mut self, request: &Request) -> Result<Response, FsiError> {
        let (status, body) = self.post(&fsi_proto::encode_request(request))?;
        if !(200..300).contains(&status) {
            return Err(FsiError::Http { status, body });
        }
        Ok(decode_response(&body)?)
    }

    /// Sends a raw body and returns `(status, response body)` without
    /// decoding — the escape hatch for protocol tests.
    pub fn post(&mut self, body: &str) -> Result<(u16, String), FsiError> {
        write!(
            self.writer,
            "POST /query HTTP/1.1\r\nContent-Type: application/json\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        )?;
        self.writer.flush()?;
        self.read_response()
    }

    /// Sends a bodyless `GET` and returns `(status, response body)` —
    /// how `/metrics` is scraped over a keep-alive connection.
    pub fn get(&mut self, path: &str) -> Result<(u16, String), FsiError> {
        write!(self.writer, "GET {path} HTTP/1.1\r\n\r\n")?;
        self.writer.flush()?;
        self.read_response()
    }

    /// Reads one framed response off the connection.
    fn read_response(&mut self) -> Result<(u16, String), FsiError> {
        let mut status_line = String::new();
        if self.reader.read_line(&mut status_line)? == 0 {
            return Err(FsiError::Io(std::io::Error::new(
                ErrorKind::UnexpectedEof,
                "server closed the connection before responding",
            )));
        }
        let status: u16 = status_line
            .split_whitespace()
            .nth(1)
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| {
                FsiError::Io(std::io::Error::new(
                    ErrorKind::InvalidData,
                    format!("malformed status line: {status_line:?}"),
                ))
            })?;
        let mut content_length = 0usize;
        loop {
            let mut header = String::new();
            if self.reader.read_line(&mut header)? == 0 {
                return Err(FsiError::Io(std::io::Error::new(
                    ErrorKind::UnexpectedEof,
                    "connection closed inside the response head",
                )));
            }
            let header = header.trim();
            if header.is_empty() {
                break;
            }
            if let Some((name, value)) = header.split_once(':') {
                if name.eq_ignore_ascii_case("content-length") {
                    content_length = value.trim().parse().map_err(|_| {
                        FsiError::Io(std::io::Error::new(
                            ErrorKind::InvalidData,
                            format!("bad content-length: {value:?}"),
                        ))
                    })?;
                }
            }
        }
        let mut body = vec![0u8; content_length];
        self.reader.read_exact(&mut body)?;
        let body = String::from_utf8(body).map_err(|e| {
            FsiError::Io(std::io::Error::new(ErrorKind::InvalidData, e.to_string()))
        })?;
        Ok((status, body))
    }
}

/// One-shot convenience: connect, send one request, disconnect.
pub fn query_once(addr: impl ToSocketAddrs, request: &Request) -> Result<Response, FsiError> {
    HttpClient::connect(addr)?.call(request)
}

/// One-shot Prometheus scrape: `GET /metrics`, answering the text
/// exposition. A non-2xx status surfaces as [`FsiError::Http`].
pub fn scrape_metrics(addr: impl ToSocketAddrs) -> Result<String, FsiError> {
    let (status, body) = HttpClient::connect(addr)?.get("/metrics")?;
    if !(200..300).contains(&status) {
        return Err(FsiError::Http { status, body });
    }
    Ok(body)
}

/// A [`ShardBackend`] over a remote shard server: one keep-alive
/// [`HttpClient`] speaking the typed protocol, shared by every
/// coordinator worker behind a mutex (one in-flight request per remote
/// shard — requests to *different* shards still run in parallel, which
/// is what the two-phase rebuild fan-out needs).
///
/// A transport failure drops the dead connection and redials (once by
/// default, [`RemoteShard::with_reconnect_attempts`] to raise it)
/// before answering a structured [`ErrorCode::Internal`] error, so a
/// shard-server restart costs one failed round-trip, not a coordinator
/// restart.
pub struct RemoteShard {
    addr: String,
    client: Mutex<Option<HttpClient>>,
    reconnect_attempts: u32,
    reconnects: Counter,
    failures: Counter,
}

impl RemoteShard {
    /// Dials `addr` (`host:port`) eagerly, so topology construction
    /// surfaces an unreachable shard immediately instead of at first
    /// query.
    pub fn connect(addr: &str) -> Result<Self, ServeError> {
        let client = HttpClient::connect(addr).map_err(|e| ServeError::Remote {
            addr: addr.to_string(),
            detail: e.to_string(),
        })?;
        Ok(Self {
            addr: addr.to_string(),
            client: Mutex::new(Some(client)),
            reconnect_attempts: 1,
            reconnects: Counter::new(),
            failures: Counter::new(),
        })
    }

    /// How many fresh connections one failed round-trip may dial before
    /// giving up (default 1; clamped to at least 1). Raising it rides
    /// out servers that reap idle keep-alive connections *and* are slow
    /// to accept the replacement dial.
    pub fn with_reconnect_attempts(mut self, attempts: u32) -> Self {
        self.reconnect_attempts = attempts.max(1);
        self
    }

    /// The connector `fsi_serve::Topology::from_spec` expects: dials
    /// every `http://host:port` slot of a topology spec through
    /// [`RemoteShard::connect`].
    pub fn connector() -> impl Fn(&str) -> Result<Box<dyn ShardBackend>, ServeError> {
        |addr| Ok(Box::new(RemoteShard::connect(addr)?) as Box<dyn ShardBackend>)
    }

    /// One round-trip, redialing up to `reconnect_attempts` times on a
    /// transport failure.
    fn call(&self, request: &Request) -> Result<Response, FsiError> {
        let mut slot = self.client.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(mut client) = slot.take() {
            // A failed call means the connection is dead (server
            // restarted, idle keep-alive reaped, …): drop it and
            // redial below.
            if let Ok(response) = client.call(request) {
                *slot = Some(client);
                return Ok(response);
            }
        }
        let mut last: Option<FsiError> = None;
        for _ in 0..self.reconnect_attempts.max(1) {
            match self.redial() {
                Ok(mut client) => match client.call(request) {
                    Ok(response) => {
                        *slot = Some(client);
                        return Ok(response);
                    }
                    Err(e) => last = Some(e),
                },
                Err(e) => last = Some(e),
            }
        }
        Err(last.expect("at least one redial attempt ran"))
    }

    /// Dials a replacement connection, counting the reconnect whether
    /// or not the dial succeeds — a flapping shard shows up either way.
    fn redial(&self) -> Result<HttpClient, FsiError> {
        self.reconnects.inc();
        Ok(HttpClient::connect(self.addr.as_str())?)
    }
}

impl ShardBackend for RemoteShard {
    fn dispatch(&self, request: &Request) -> Response {
        match self.call(request) {
            Ok(response) => response,
            Err(e) => {
                self.failures.inc();
                Response::error(
                    ErrorCode::Internal,
                    format!("remote shard {}: {e}", self.addr),
                )
            }
        }
    }

    fn descriptor(&self) -> ShardDescriptor {
        ShardDescriptor {
            kind: "http",
            addr: Some(self.addr.clone()),
        }
    }

    fn generation(&self) -> u64 {
        match self.dispatch(&Request::Stats) {
            Response::Stats { stats } => stats.generations.first().copied().unwrap_or(0),
            _ => 0,
        }
    }

    fn transport_stats(&self) -> Option<TransportStats> {
        Some(TransportStats {
            reconnects: self.reconnects.get(),
            failures: self.failures.get(),
        })
    }
}

/// The resilience-aware [`SlotConnector`]: HTTP slots dial through
/// [`RemoteShard`] exactly like [`RemoteShard::connector`], and
/// `{"replicas": [...]}` slots additionally wrap their members in an
/// [`fsi_resil::ReplicaSet`] dispatching under `policy` — retries,
/// hedging, per-replica circuit breakers. Hand it to
/// [`fsi_serve::Topology::from_spec`] (or use
/// [`crate::Serving::service_over_with`]) to build a replicated
/// topology.
pub struct ResilientConnector {
    policy: ResiliencePolicy,
    reconnect_attempts: u32,
}

impl ResilientConnector {
    /// A connector building replica sets under `policy`. The policy is
    /// validated when the first replica slot is built (construction
    /// cannot fail, so an invalid policy surfaces as an
    /// `InvalidTopology` error from `Topology::from_spec`).
    pub fn new(policy: ResiliencePolicy) -> Self {
        Self {
            policy,
            reconnect_attempts: 1,
        }
    }

    /// Sets [`RemoteShard::with_reconnect_attempts`] on every HTTP
    /// member this connector dials.
    pub fn with_reconnect_attempts(mut self, attempts: u32) -> Self {
        self.reconnect_attempts = attempts.max(1);
        self
    }
}

impl SlotConnector for ResilientConnector {
    fn connect(&self, addr: &str) -> Result<Box<dyn ShardBackend>, ServeError> {
        Ok(Box::new(
            RemoteShard::connect(addr)?.with_reconnect_attempts(self.reconnect_attempts),
        ))
    }

    fn replica_set(
        &self,
        members: Vec<Box<dyn ShardBackend>>,
    ) -> Result<Box<dyn ShardBackend>, ServeError> {
        ReplicaSet::new(members, self.policy.clone())
            .map(|set| Box::new(set) as Box<dyn ShardBackend>)
            .map_err(|e| ServeError::InvalidTopology(e.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fsi_geo::{Grid, Partition};
    use fsi_pipeline::ModelSnapshot;
    use fsi_proto::{ErrorCode, WirePoint};
    use fsi_serve::{FrozenIndex, QueryService};

    fn service() -> QueryService {
        let grid = Grid::unit(8).unwrap();
        let partition = Partition::uniform(&grid, 2, 2).unwrap();
        let snapshot = ModelSnapshot::uniform(4, 0.25).unwrap();
        QueryService::from(FrozenIndex::from_partition(&partition, &grid, &snapshot).unwrap())
    }

    #[test]
    fn round_trips_every_request_kind_over_keep_alive() {
        let server = HttpServer::bind(service(), "127.0.0.1:0").unwrap();
        let mut client = HttpClient::connect(server.addr()).unwrap();
        match client.call(&Request::Lookup { x: 0.1, y: 0.1 }).unwrap() {
            Response::Decision { decision } => assert_eq!(decision.leaf_id, 0),
            other => panic!("expected decision, got {other:?}"),
        }
        match client
            .call(&Request::LookupBatch {
                points: vec![WirePoint::new(0.1, 0.1), WirePoint::new(0.9, 0.9)],
            })
            .unwrap()
        {
            Response::Decisions { decisions } => assert_eq!(decisions.len(), 2),
            other => panic!("expected decisions, got {other:?}"),
        }
        match client
            .call(&Request::RangeQuery {
                rect: fsi_proto::WireRect::new(0.0, 0.0, 1.0, 1.0),
            })
            .unwrap()
        {
            Response::Regions { ids } => assert_eq!(ids, vec![0, 1, 2, 3]),
            other => panic!("expected regions, got {other:?}"),
        }
        match client.call(&Request::Stats).unwrap() {
            Response::Stats { stats } => assert_eq!(stats.shards, 1),
            other => panic!("expected stats, got {other:?}"),
        }
        server.shutdown();
    }

    #[test]
    fn application_errors_are_200_with_structured_bodies() {
        let server = HttpServer::bind(service(), "127.0.0.1:0").unwrap();
        let mut client = HttpClient::connect(server.addr()).unwrap();
        match client.call(&Request::Lookup { x: 9.0, y: 9.0 }).unwrap() {
            Response::Error { error } => assert_eq!(error.code, ErrorCode::OutOfBounds),
            other => panic!("expected error, got {other:?}"),
        }
        server.shutdown();
    }

    #[test]
    fn transport_failures_map_to_http_statuses() {
        let server = HttpServer::bind(service(), "127.0.0.1:0").unwrap();
        let mut client = HttpClient::connect(server.addr()).unwrap();
        // Undecodable body → 400 with an error envelope.
        let (status, body) = client.post("this is not json").unwrap();
        assert_eq!(status, 400);
        match decode_response(&body).unwrap() {
            Response::Error { error } => assert_eq!(error.code, ErrorCode::MalformedRequest),
            other => panic!("expected error body, got {other:?}"),
        }
        // Wrong protocol version → 400 UnsupportedVersion.
        let wire = fsi_proto::encode_request(&Request::Stats).replace("\"v\":1", "\"v\":42");
        let (status, body) = client.post(&wire).unwrap();
        assert_eq!(status, 400);
        match decode_response(&body).unwrap() {
            Response::Error { error } => {
                assert_eq!(error.code, ErrorCode::UnsupportedVersion)
            }
            other => panic!("expected error body, got {other:?}"),
        }
        // The connection survived both failures.
        assert!(client.call(&Request::Stats).is_ok());
        server.shutdown();
    }

    #[test]
    fn wrong_method_and_path_answer_http_errors() {
        let server = HttpServer::bind(service(), "127.0.0.1:0").unwrap();
        let stream = TcpStream::connect(server.addr()).unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut writer = stream;
        write!(writer, "GET /query HTTP/1.1\r\nContent-Length: 0\r\n\r\n").unwrap();
        writer.flush().unwrap();
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        assert!(line.contains("405"), "{line}");
        server.shutdown();
    }

    /// Reads one framed response (status, body) from a raw connection.
    fn read_raw_response(reader: &mut BufReader<TcpStream>) -> (u16, String) {
        let mut status_line = String::new();
        reader.read_line(&mut status_line).unwrap();
        let status: u16 = status_line
            .split_whitespace()
            .nth(1)
            .and_then(|s| s.parse().ok())
            .unwrap_or_else(|| panic!("bad status line {status_line:?}"));
        let mut content_length = 0usize;
        loop {
            let mut header = String::new();
            reader.read_line(&mut header).unwrap();
            if header.trim().is_empty() {
                break;
            }
            if let Some((name, value)) = header.trim().split_once(':') {
                if name.eq_ignore_ascii_case("content-length") {
                    content_length = value.trim().parse().unwrap();
                }
            }
        }
        let mut body = vec![0u8; content_length];
        reader.read_exact(&mut body).unwrap();
        (status, String::from_utf8(body).unwrap())
    }

    #[test]
    fn rejected_requests_with_bodies_do_not_desync_keep_alive() {
        let server = HttpServer::bind(service(), "127.0.0.1:0").unwrap();
        let stream = TcpStream::connect(server.addr()).unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut writer = stream;
        let body = fsi_proto::encode_request(&Request::Stats);
        // Both rejected requests carry bodies the server must consume,
        // or the valid request behind them would be parsed mid-body.
        write!(
            writer,
            "POST /nope HTTP/1.1\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        )
        .unwrap();
        write!(
            writer,
            "PUT /query HTTP/1.1\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        )
        .unwrap();
        write!(
            writer,
            "POST /query HTTP/1.1\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        )
        .unwrap();
        writer.flush().unwrap();

        let (status, _) = read_raw_response(&mut reader);
        assert_eq!(status, 404);
        let (status, _) = read_raw_response(&mut reader);
        assert_eq!(status, 405);
        let (status, wire) = read_raw_response(&mut reader);
        assert_eq!(status, 200, "keep-alive connection desynced: {wire}");
        assert!(matches!(
            decode_response(&wire).unwrap(),
            Response::Stats { .. }
        ));
        server.shutdown();
    }

    #[test]
    fn oversized_head_lines_close_the_connection_instead_of_growing() {
        let server = HttpServer::bind(service(), "127.0.0.1:0").unwrap();
        let stream = TcpStream::connect(server.addr()).unwrap();
        let mut writer = stream.try_clone().unwrap();
        // One endless header line, far past the cap: the server must
        // hang up rather than buffer it.
        let chunk = [b'a'; 4096];
        let mut reader = BufReader::new(stream);
        writer
            .write_all(b"POST /query HTTP/1.1\r\nX-Flood: ")
            .unwrap();
        let mut closed = false;
        for _ in 0..32 {
            if writer
                .write_all(&chunk)
                .and_then(|()| writer.flush())
                .is_err()
            {
                closed = true; // server reset the connection mid-flood
                break;
            }
        }
        if !closed {
            // The server closes without answering; EOF (or a reset) is
            // the expected outcome, never a response.
            let mut line = String::new();
            closed = match reader.read_line(&mut line) {
                Ok(0) | Err(_) => true,
                Ok(_) => false,
            };
        }
        assert!(closed, "server kept buffering an unbounded head line");
        server.shutdown();
    }

    #[test]
    fn remote_shard_backend_forwards_and_degrades_gracefully() {
        let server = HttpServer::bind(service(), "127.0.0.1:0").unwrap();
        let addr = server.addr().to_string();
        let shard = RemoteShard::connect(&addr).unwrap();
        assert_eq!(
            shard.descriptor(),
            ShardDescriptor {
                kind: "http",
                addr: Some(addr.clone()),
            }
        );
        assert_eq!(shard.generation(), 1);
        match shard.dispatch(&Request::Lookup { x: 0.1, y: 0.1 }) {
            Response::Decision { decision } => assert_eq!(decision.leaf_id, 0),
            other => panic!("expected decision, got {other:?}"),
        }
        // Once the shard server is gone, dispatch answers a structured
        // Internal error (after one reconnect attempt) and the
        // generation reads as unreachable — the coordinator keeps
        // serving its other shards.
        server.shutdown();
        match shard.dispatch(&Request::Stats) {
            Response::Error { error } => {
                assert_eq!(error.code, ErrorCode::Internal);
                assert!(error.message.contains(&addr), "{}", error.message);
            }
            other => panic!("expected error, got {other:?}"),
        }
        assert_eq!(shard.generation(), 0);
        // Dialing a dead address fails eagerly at construction.
        assert!(matches!(
            RemoteShard::connect(&addr),
            Err(ServeError::Remote { .. })
        ));
    }

    #[test]
    fn query_once_works_without_a_persistent_client() {
        let server = HttpServer::bind(service(), "127.0.0.1:0").unwrap();
        let response = query_once(server.addr(), &Request::Stats).unwrap();
        assert!(matches!(response, Response::Stats { .. }));
        server.shutdown();
    }

    #[test]
    fn get_metrics_answers_the_text_exposition_outside_the_envelope() {
        let server = HttpServer::bind(service().with_lookup_sampling(1), "127.0.0.1:0").unwrap();
        let mut client = HttpClient::connect(server.addr()).unwrap();
        for _ in 0..3 {
            client.call(&Request::Lookup { x: 0.1, y: 0.1 }).unwrap();
        }
        let text = scrape_metrics(server.addr()).unwrap();
        assert!(
            text.contains("fsi_requests_total{kind=\"lookup\"} 3"),
            "{text}"
        );
        assert!(text.contains("# TYPE fsi_request_latency_seconds summary"));
        assert!(text.contains("fsi_generation 1"));
        assert!(text.contains("fsi_http_connections_total"));
        assert!(text.contains("fsi_http_requests_total"));
        // The same keep-alive connection can scrape between envelope
        // requests without desyncing either framing.
        let (status, text) = client.get("/metrics").unwrap();
        assert_eq!(status, 200);
        assert!(text.contains("fsi_requests_total{kind=\"lookup\"} 3"));
        assert!(matches!(
            client.call(&Request::Stats).unwrap(),
            Response::Stats { .. }
        ));
        server.shutdown();
    }

    #[test]
    fn wire_metrics_responses_carry_the_http_transport_block() {
        let server = HttpServer::bind(service(), "127.0.0.1:0").unwrap();
        let mut client = HttpClient::connect(server.addr()).unwrap();
        client.call(&Request::Lookup { x: 0.1, y: 0.1 }).unwrap();
        let Response::Metrics { metrics } = client.call(&Request::Metrics).unwrap() else {
            panic!("expected metrics");
        };
        let http = metrics.http.expect("transport block attached");
        assert!(http.connections >= 1, "{http:?}");
        assert!(http.active >= 1, "{http:?}");
        assert!(http.requests >= 2, "{http:?}");
        server.shutdown();
    }

    #[test]
    fn remote_shard_reports_transport_stats() {
        let server = HttpServer::bind(service(), "127.0.0.1:0").unwrap();
        let shard = RemoteShard::connect(&server.addr().to_string()).unwrap();
        shard.dispatch(&Request::Stats);
        assert_eq!(
            shard.transport_stats(),
            Some(TransportStats {
                reconnects: 0,
                failures: 0,
            })
        );
        server.shutdown();
        shard.dispatch(&Request::Stats);
        let stats = shard.transport_stats().unwrap();
        assert_eq!(stats.failures, 1, "{stats:?}");
        assert!(stats.reconnects >= 1, "{stats:?}");
    }
}
