//! The text transport: a line-oriented REPL over the same
//! [`QueryService`] (and thus the same typed protocol) the HTTP
//! listener speaks — parsing never panics, and malformed input answers
//! an `error: …` line while the loop keeps serving.
//!
//! One query per line:
//!
//! * `X Y` — a point lookup ([`Request::Lookup`]); answers
//!   `leaf=<id> group=<g> raw=<r> calibrated=<c>` with full-precision
//!   floats, so the text output round-trips the served decision
//!   bit-identically;
//! * `batch X1 Y1 X2 Y2 …` — a batched lookup ([`Request::LookupBatch`]);
//! * `rect X0 Y0 X1 Y1` — a map-space range query
//!   ([`Request::RangeQuery`]); answers `neighborhoods: [..]`;
//! * `stats` — service statistics ([`Request::Stats`]), including one
//!   `shard#<i>` segment per backend on topology-backed services
//!   (printed uniformly as `kind@addr`, with `-` for in-process
//!   backends that have no address);
//! * `metrics` — the telemetry snapshot ([`Request::Metrics`]):
//!   per-kind request counts with latency quantiles, error totals,
//!   cache counters and per-shard transport health;
//! * `health` — the fleet health picture ([`Request::Health`]): one
//!   segment per shard with its state (`up`/`degraded`/`down`) and,
//!   for replicated slots, each replica's circuit-breaker state;
//! * `ingest X Y G [L]` — append one observed point to the delta
//!   buffer ([`Request::Ingest`]): coordinates, cohort group `G`, and
//!   an optional observed outcome `L` (`0`/`1`/`true`/`false`,
//!   default `0`); answers `ingested: accepted=.. buffered=..
//!   generation=..`;
//! * `rebuild <spec JSON>` — retrain and hot-swap
//!   ([`Request::Rebuild`]), e.g. the JSON produced by serializing a
//!   [`fsi_pipeline::PipelineSpec`];
//! * `prepare <spec JSON>` / `commit` / `abort` — the two-phase rebuild
//!   barrier ([`Request::RebuildPrepare`] / [`Request::RebuildCommit`] /
//!   [`Request::RebuildAbort`]) a coordinator drives against remote
//!   shard servers.
//!
//! Anything else — wrong arity, unparsable numbers, degenerate
//! rectangles, invalid UTF-8 — produces an `error: …` response line and
//! the loop keeps serving. The `redistricting_cli serve` subcommand is a
//! thin wrapper around [`serve_queries`] over stdin/stdout; tests drive
//! the same function through an OS pipe, and the differential transport
//! test proves this path answers bit-identically to HTTP and direct
//! index calls.

use fsi_proto::{Request, Response, WirePoint, WireRect};
use fsi_serve::QueryService;
use std::io::{BufRead, Write};

/// Parses one text line into a typed [`Request`].
///
/// Returns `None` for blank lines (no response is owed), `Some(Ok)` for
/// a valid, fully validated request, and `Some(Err)` with a
/// human-readable message otherwise.
pub fn parse_line(line: &str) -> Option<Result<Request, String>> {
    let fields: Vec<&str> = line.split_whitespace().collect();
    let request = match fields.as_slice() {
        [] => return None,
        ["stats"] => Ok(Request::Stats),
        ["metrics"] => Ok(Request::Metrics),
        ["health"] => Ok(Request::Health),
        ["rect", x0, y0, x1, y1] => match (x0.parse(), y0.parse(), x1.parse(), y1.parse()) {
            (Ok(x0), Ok(y0), Ok(x1), Ok(y1)) => Ok(Request::RangeQuery {
                rect: WireRect::new(x0, y0, x1, y1),
            }),
            _ => Err("bad rect: expected `rect X0 Y0 X1 Y1` with numeric bounds".into()),
        },
        ["rect", ..] => Err("bad rect: expected `rect X0 Y0 X1 Y1` with numeric bounds".into()),
        ["batch", coords @ ..] => parse_batch(coords),
        ["ingest", rest @ ..] => parse_ingest(rest),
        ["rebuild", ..] => {
            let json = line.trim_start().trim_start_matches("rebuild").trim();
            match serde_json::from_str(json) {
                Ok(spec) => Ok(Request::Rebuild { spec }),
                Err(e) => Err(format!("bad rebuild spec: {e}")),
            }
        }
        ["commit"] => Ok(Request::RebuildCommit),
        ["abort"] => Ok(Request::RebuildAbort),
        ["prepare", ..] => {
            let json = line.trim_start().trim_start_matches("prepare").trim();
            match serde_json::from_str(json) {
                Ok(spec) => Ok(Request::RebuildPrepare { spec, delta: None }),
                Err(e) => Err(format!("bad prepare spec: {e}")),
            }
        }
        [x, y] => match (x.parse(), y.parse()) {
            (Ok(x), Ok(y)) => Ok(Request::Lookup { x, y }),
            _ => Err("bad point: expected `X Y` with numeric coordinates".into()),
        },
        _ => Err(format!("unrecognized query: `{line}`")),
    };
    // The same validation every transport runs at decode time.
    Some(request.and_then(|r| r.validate().map(|()| r).map_err(|e| e.to_string())))
}

fn parse_ingest(fields: &[&str]) -> Result<Request, String> {
    const USAGE: &str =
        "bad ingest: expected `ingest X Y G [L]` with numeric X Y G and L one of 0/1/true/false";
    let (coords, label) = match fields {
        [x, y, g] => ((x, y, g), false),
        [x, y, g, l] => {
            let label = match *l {
                "0" | "false" => false,
                "1" | "true" => true,
                _ => return Err(USAGE.into()),
            };
            ((x, y, g), label)
        }
        _ => return Err(USAGE.into()),
    };
    match (coords.0.parse(), coords.1.parse(), coords.2.parse()) {
        (Ok(x), Ok(y), Ok(group)) => Ok(Request::Ingest { x, y, group, label }),
        _ => Err(USAGE.into()),
    }
}

fn parse_batch(coords: &[&str]) -> Result<Request, String> {
    if coords.is_empty() || !coords.len().is_multiple_of(2) {
        return Err(format!(
            "bad batch: expected an even number of coordinates, got {}",
            coords.len()
        ));
    }
    let mut points = Vec::with_capacity(coords.len() / 2);
    for pair in coords.chunks_exact(2) {
        match (pair[0].parse(), pair[1].parse()) {
            (Ok(x), Ok(y)) => points.push(WirePoint::new(x, y)),
            _ => return Err(format!("bad batch point `{} {}`", pair[0], pair[1])),
        }
    }
    Ok(Request::LookupBatch { points })
}

/// Renders one decision with full-precision floats (so the text form is
/// bit-faithful to the served decision).
fn format_decision(d: &fsi_proto::DecisionBody) -> String {
    format!(
        "leaf={} group={} raw={} calibrated={}",
        d.leaf_id, d.group, d.raw_score, d.calibrated_score
    )
}

/// Renders a typed [`Response`] as one text line.
pub fn format_response(response: &Response) -> String {
    match response {
        Response::Decision { decision } => format_decision(decision),
        Response::Decisions { decisions } => {
            let items: Vec<String> = decisions.iter().map(format_decision).collect();
            format!("decisions: [{}]", items.join(", "))
        }
        Response::Regions { ids } => format!("neighborhoods: {ids:?}"),
        Response::Stats { stats } => {
            let mut line = format!(
                "stats: shards={} generations={:?} leaves={} heap_bytes={} backend={}",
                stats.shards, stats.generations, stats.num_leaves, stats.heap_bytes, stats.backend
            );
            if let Some(cache) = &stats.cache {
                line.push_str(&format!(
                    " cache: hits={} misses={} hit_rate={:.1}% evictions={} entries={}/{}",
                    cache.hits,
                    cache.misses,
                    cache.hit_rate() * 100.0,
                    cache.evictions,
                    cache.entries,
                    cache.capacity
                ));
            }
            if let Some(per_shard) = &stats.per_shard {
                for (i, shard) in per_shard.iter().enumerate() {
                    line.push_str(&format!(
                        " shard#{i}: {}@{} generation={} leaves={} heap_bytes={}",
                        shard.kind,
                        shard.addr.as_deref().unwrap_or("-"),
                        shard.generation,
                        shard.num_leaves,
                        shard.heap_bytes
                    ));
                }
            }
            line
        }
        Response::Metrics { metrics } => {
            let mut line = format!(
                "metrics: requests={} generation={} slow_queries={}",
                metrics.total_requests(),
                metrics.generation,
                metrics.slow_queries
            );
            for kind in metrics.requests.iter().filter(|r| r.count > 0) {
                line.push_str(&format!(
                    " {}: count={} p50_us={:.1} p99_us={:.1}",
                    kind.kind,
                    kind.count,
                    kind.latency.p50() as f64 / 1e3,
                    kind.latency.p99() as f64 / 1e3,
                ));
            }
            for error in &metrics.errors {
                line.push_str(&format!(" error[{}]={}", error.code, error.count));
            }
            if let Some(cache) = &metrics.cache {
                line.push_str(&format!(
                    " cache: hits={} misses={} evictions={}",
                    cache.hits, cache.misses, cache.evictions
                ));
            }
            if let Some(ingest) = &metrics.ingest {
                line.push_str(&format!(
                    " ingest: accepted={} rejected={} buffered={} drift={:.4}",
                    ingest.accepted, ingest.rejected, ingest.buffered, ingest.drift_score
                ));
            }
            for shard in &metrics.shards {
                if shard.requests > 0 || shard.failures > 0 {
                    line.push_str(&format!(
                        " shard#{}: {}@{} requests={} failures={} reconnects={}",
                        shard.shard,
                        shard.kind,
                        shard.addr.as_deref().unwrap_or("-"),
                        shard.requests,
                        shard.failures,
                        shard.reconnects
                    ));
                }
            }
            line
        }
        Response::Health { health } => {
            let overall = if health.all_up() { "up" } else { "degraded" };
            let mut line = format!("health: {overall}");
            for shard in &health.shards {
                line.push_str(&format!(
                    " shard#{}: {}@{} state={}",
                    shard.shard,
                    shard.kind,
                    shard.addr.as_deref().unwrap_or("-"),
                    shard.state
                ));
                for r in &shard.replicas {
                    line.push_str(&format!(
                        " replica#{}.{}: {}@{} breaker={} failures={}",
                        shard.shard,
                        r.replica,
                        r.kind,
                        r.addr.as_deref().unwrap_or("-"),
                        r.state,
                        r.consecutive_failures
                    ));
                }
            }
            line
        }
        Response::Rebuilt { report } => format!(
            "rebuilt: generation={} leaves={} ence={} total_ms={:.1}",
            report.generation,
            report.num_leaves,
            report.ence,
            report.total_time.as_secs_f64() * 1e3
        ),
        Response::Prepared { prepared } => format!(
            "prepared: leaves={} heap_bytes={} ence={} build_ms={:.1}",
            prepared.num_leaves,
            prepared.heap_bytes,
            prepared.ence,
            prepared.build_time.as_secs_f64() * 1e3
        ),
        Response::Ingested {
            accepted,
            buffered,
            generation,
        } => format!("ingested: accepted={accepted} buffered={buffered} generation={generation}"),
        Response::Committed { generation } => format!("committed: generation={generation}"),
        Response::Aborted => "aborted".into(),
        Response::Error { error } => format!("error: {}: {}", error.code, error.message),
    }
}

/// Answers one query line against the service. Returns `None` for blank
/// lines, `Some(response)` otherwise — malformed queries answer with a
/// line starting `error:` instead of failing.
pub fn answer_line(service: &mut QueryService, line: &str) -> Option<String> {
    Some(match parse_line(line)? {
        Ok(request) => format_response(&service.dispatch(&request)),
        Err(message) => format!("error: {message}"),
    })
}

/// What a [`serve_queries`] session did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServeStats {
    /// Queries answered successfully.
    pub answered: usize,
    /// Lines answered with an `error:` response (malformed queries,
    /// out-of-bounds points, undecodable input).
    pub errors: usize,
}

/// Serves queries from `input` to `output` until EOF.
///
/// Malformed query lines — including lines that are not valid UTF-8 —
/// get an `error: …` response and the loop continues; only a genuine
/// I/O failure of the streams ends the session early.
pub fn serve_queries<R: BufRead, W: Write>(
    service: &mut QueryService,
    input: R,
    output: &mut W,
) -> std::io::Result<ServeStats> {
    let mut stats = ServeStats::default();
    for line in input.lines() {
        let response = match line {
            Ok(line) => match answer_line(service, &line) {
                Some(r) => r,
                None => continue,
            },
            // Invalid UTF-8 surfaces as InvalidData with the offending
            // bytes already consumed — answer and keep serving.
            Err(e) if e.kind() == std::io::ErrorKind::InvalidData => {
                "error: input line is not valid UTF-8".into()
            }
            Err(e) => return Err(e),
        };
        if response.starts_with("error:") {
            stats.errors += 1;
        } else {
            stats.answered += 1;
        }
        writeln!(output, "{response}")?;
    }
    output.flush()?;
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fsi_geo::{Grid, Partition};
    use fsi_pipeline::ModelSnapshot;
    use fsi_serve::FrozenIndex;

    fn service() -> QueryService {
        let grid = Grid::unit(4).unwrap();
        let partition = Partition::uniform(&grid, 2, 2).unwrap();
        let snapshot = ModelSnapshot::uniform(4, 0.25).unwrap();
        QueryService::from(FrozenIndex::from_partition(&partition, &grid, &snapshot).unwrap())
    }

    #[test]
    fn well_formed_queries_answer() {
        let mut svc = service();
        let a = answer_line(&mut svc, "0.1 0.1").unwrap();
        assert!(a.starts_with("leaf="), "{a}");
        let a = answer_line(&mut svc, "rect 0.0 0.0 1.0 1.0").unwrap();
        assert!(a.starts_with("neighborhoods:"), "{a}");
        let a = answer_line(&mut svc, "batch 0.1 0.1 0.9 0.9").unwrap();
        assert!(a.starts_with("decisions:"), "{a}");
        let a = answer_line(&mut svc, "stats").unwrap();
        assert!(a.contains("shards=1"), "{a}");
        // Uncached service: no cache segment on the stats line.
        assert!(!a.contains("cache:"), "{a}");
        assert_eq!(answer_line(&mut svc, "   "), None);
    }

    #[test]
    fn stats_line_reports_cache_counters_when_caching() {
        let mut svc = service()
            .with_cache(fsi_serve::CacheSpec::per_worker(64))
            .unwrap();
        answer_line(&mut svc, "0.1 0.1").unwrap();
        answer_line(&mut svc, "0.1 0.1").unwrap();
        let a = answer_line(&mut svc, "stats").unwrap();
        assert!(a.contains("cache: hits=1 misses=1 hit_rate=50.0%"), "{a}");
        assert!(a.contains("entries=1/64"), "{a}");
    }

    #[test]
    fn malformed_queries_answer_with_error_lines() {
        let mut svc = service();
        for bad in [
            "nonsense",
            "1.0",
            "a b",
            "rect a b c d",
            "rect 1 2 3",
            "0.5 0.5 0.5",
            "rect 0.9 0.9 0.1 0.1",
            "9.0 9.0",
            "batch 0.1",
            "batch 0.1 oops",
            "rebuild not-json",
            "prepare not-json",
            "commit now",
            "ingest 0.5",
            "ingest 0.5 0.5 zero",
            "ingest 0.5 0.5 0 maybe",
            "ingest 9.0 9.0 0", // out of bounds at validation
        ] {
            let a = answer_line(&mut svc, bad).unwrap_or_else(|| panic!("{bad} must answer"));
            assert!(a.starts_with("error:"), "{bad} -> {a}");
        }
    }

    #[test]
    fn decisions_are_formatted_with_full_precision() {
        let mut svc = service();
        let a = answer_line(&mut svc, "0.1 0.1").unwrap();
        // raw 0.25, offset 0 → both scores print exactly.
        assert!(a.contains("raw=0.25"), "{a}");
        assert!(a.contains("calibrated=0.25"), "{a}");
    }

    #[test]
    fn serve_loop_survives_invalid_utf8_and_keeps_serving() {
        let mut svc = service();
        let mut input: Vec<u8> = Vec::new();
        input.extend_from_slice(b"0.1 0.1\n");
        input.extend_from_slice(&[0xFF, 0xFE, b'\n']); // not UTF-8
        input.extend_from_slice(b"bogus query\n");
        input.extend_from_slice(b"0.9 0.9\n");
        let mut out = Vec::new();
        let stats = serve_queries(&mut svc, &input[..], &mut out).unwrap();
        assert_eq!(stats.answered, 2);
        assert_eq!(stats.errors, 2);
        let text = String::from_utf8(out).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("leaf="));
        assert!(lines[1].starts_with("error:"));
        assert!(lines[2].starts_with("error:"));
        assert!(lines[3].starts_with("leaf="));
    }

    #[test]
    fn stats_line_reports_one_kind_at_addr_segment_per_shard() {
        let mut svc = service();
        let a = answer_line(&mut svc, "stats").unwrap();
        assert!(a.contains("shard#0: local@- generation=1"), "{a}");
    }

    #[test]
    fn metrics_command_reports_the_telemetry_snapshot() {
        let mut svc = service().with_lookup_sampling(1);
        answer_line(&mut svc, "0.1 0.1").unwrap();
        answer_line(&mut svc, "0.9 0.9").unwrap();
        answer_line(&mut svc, "9.0 9.0").unwrap(); // out of bounds
        let a = answer_line(&mut svc, "metrics").unwrap();
        assert!(a.starts_with("metrics: requests=3 generation=1"), "{a}");
        assert!(a.contains("lookup: count=3 p50_us="), "{a}");
        assert!(a.contains("error[out_of_bounds]=1"), "{a}");
    }

    #[test]
    fn health_command_reports_per_shard_state() {
        let mut svc = service();
        let a = answer_line(&mut svc, "health").unwrap();
        assert!(a.starts_with("health: up"), "{a}");
        assert!(a.contains("shard#0: local@- state=up"), "{a}");
    }

    #[test]
    fn two_phase_commands_parse_and_answer() {
        let mut svc = service();
        // Commit before any prepare: a structured error, not a panic.
        let a = answer_line(&mut svc, "commit").unwrap();
        assert!(a.starts_with("error: not_prepared"), "{a}");
        // Abort is idempotent: with nothing staged it still succeeds.
        assert_eq!(answer_line(&mut svc, "abort").unwrap(), "aborted");
        // Prepare without a rebuild dataset reports unavailability.
        let spec = fsi_pipeline::PipelineSpec::new(
            fsi_pipeline::TaskSpec::act(),
            fsi_pipeline::Method::MedianKd,
            2,
        );
        let line = format!("prepare {}", serde_json::to_string(&spec).unwrap());
        let a = answer_line(&mut svc, &line).unwrap();
        assert!(a.starts_with("error: rebuild_unavailable"), "{a}");
    }

    #[test]
    fn ingest_command_parses_and_answers() {
        // Parsing: label optional, both spellings accepted.
        for line in ["ingest 0.5 0.5 1", "ingest 0.5 0.5 1 true"] {
            let parsed = parse_line(line).unwrap().unwrap();
            assert!(matches!(parsed, Request::Ingest { group: 1, .. }), "{line}");
        }
        let Ok(Request::Ingest { label, .. }) = parse_line("ingest 0.5 0.5 1 1").unwrap() else {
            panic!("expected ingest");
        };
        assert!(label);
        // A service without ingestion answers a structured error line.
        let mut svc = service();
        let a = answer_line(&mut svc, "ingest 0.5 0.5 1").unwrap();
        assert!(a.starts_with("error: rebuild_unavailable"), "{a}");
    }

    #[test]
    fn rebuild_without_dataset_reports_structured_unavailability() {
        let mut svc = service();
        let spec = fsi_pipeline::PipelineSpec::new(
            fsi_pipeline::TaskSpec::act(),
            fsi_pipeline::Method::MedianKd,
            2,
        );
        let line = format!("rebuild {}", serde_json::to_string(&spec).unwrap());
        let a = answer_line(&mut svc, &line).unwrap();
        assert!(a.starts_with("error: rebuild_unavailable"), "{a}");
    }
}
