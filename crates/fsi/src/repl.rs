//! The serve-mode query protocol: parse text queries against a
//! [`FrozenIndex`], never panicking on malformed input.
//!
//! One query per line:
//!
//! * `X Y` — a point lookup; answers
//!   `leaf=<id> group=<g> raw=<r> calibrated=<c>`;
//! * `rect X0 Y0 X1 Y1` — a map-space range query; answers
//!   `neighborhoods: [..]`.
//!
//! Anything else — wrong arity, unparsable numbers, degenerate
//! rectangles, invalid UTF-8 — produces an `error: …` response line and
//! the loop keeps serving. The `redistricting_cli serve` subcommand is a
//! thin wrapper around [`serve_queries`] over stdin/stdout; tests drive
//! the same function through an OS pipe.

use fsi_geo::{Point, Rect};
use fsi_serve::FrozenIndex;
use std::io::{BufRead, Write};

/// Answers one query line. Returns `None` for blank lines (no response
/// is owed), `Some(response)` otherwise — malformed queries answer with
/// a line starting `error:` instead of failing.
pub fn answer_line(index: &FrozenIndex, line: &str) -> Option<String> {
    let fields: Vec<&str> = line.split_whitespace().collect();
    Some(match fields.as_slice() {
        [] => return None,
        ["rect", x0, y0, x1, y1] => match (x0.parse(), y0.parse(), x1.parse(), y1.parse()) {
            (Ok(x0), Ok(y0), Ok(x1), Ok(y1)) => match Rect::new(x0, y0, x1, y1) {
                Ok(rect) => format!("neighborhoods: {:?}", index.range_query(&rect)),
                Err(e) => format!("error: bad rect: {e}"),
            },
            _ => "error: bad rect: expected `rect X0 Y0 X1 Y1` with numeric bounds".into(),
        },
        [x, y] => match (x.parse(), y.parse()) {
            (Ok(x), Ok(y)) => match index.lookup(&Point::new(x, y)) {
                Some(d) => format!(
                    "leaf={} group={} raw={:.4} calibrated={:.4}",
                    d.leaf_id, d.group, d.raw_score, d.calibrated_score
                ),
                None => format!("error: point ({x}, {y}) is outside the map"),
            },
            _ => "error: bad point: expected `X Y` with numeric coordinates".into(),
        },
        _ => format!("error: unrecognized query: `{line}`"),
    })
}

/// What a [`serve_queries`] session did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServeStats {
    /// Queries answered successfully.
    pub answered: usize,
    /// Lines answered with an `error:` response (malformed queries,
    /// out-of-bounds points, undecodable input).
    pub errors: usize,
}

/// Serves queries from `input` to `output` until EOF.
///
/// Malformed query lines — including lines that are not valid UTF-8 —
/// get an `error: …` response and the loop continues; only a genuine
/// I/O failure of the streams ends the session early.
pub fn serve_queries<R: BufRead, W: Write>(
    index: &FrozenIndex,
    input: R,
    output: &mut W,
) -> std::io::Result<ServeStats> {
    let mut stats = ServeStats::default();
    for line in input.lines() {
        let response = match line {
            Ok(line) => match answer_line(index, &line) {
                Some(r) => r,
                None => continue,
            },
            // Invalid UTF-8 surfaces as InvalidData with the offending
            // bytes already consumed — answer and keep serving.
            Err(e) if e.kind() == std::io::ErrorKind::InvalidData => {
                "error: input line is not valid UTF-8".into()
            }
            Err(e) => return Err(e),
        };
        if response.starts_with("error:") {
            stats.errors += 1;
        } else {
            stats.answered += 1;
        }
        writeln!(output, "{response}")?;
    }
    output.flush()?;
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fsi_geo::{Grid, Partition};
    use fsi_pipeline::ModelSnapshot;

    fn index() -> FrozenIndex {
        let grid = Grid::unit(4).unwrap();
        let partition = Partition::uniform(&grid, 2, 2).unwrap();
        let snapshot = ModelSnapshot::uniform(4, 0.25).unwrap();
        FrozenIndex::from_partition(&partition, &grid, &snapshot).unwrap()
    }

    #[test]
    fn well_formed_queries_answer() {
        let idx = index();
        let a = answer_line(&idx, "0.1 0.1").unwrap();
        assert!(a.starts_with("leaf="), "{a}");
        let a = answer_line(&idx, "rect 0.0 0.0 1.0 1.0").unwrap();
        assert!(a.starts_with("neighborhoods:"), "{a}");
        assert_eq!(answer_line(&idx, "   "), None);
    }

    #[test]
    fn malformed_queries_answer_with_error_lines() {
        let idx = index();
        for bad in [
            "nonsense",
            "1.0",
            "a b",
            "rect a b c d",
            "rect 1 2 3",
            "0.5 0.5 0.5",
            "rect 0.9 0.9 0.1 0.1",
            "9.0 9.0",
        ] {
            let a = answer_line(&idx, bad).unwrap_or_else(|| panic!("{bad} must answer"));
            assert!(a.starts_with("error:"), "{bad} -> {a}");
        }
    }

    #[test]
    fn serve_loop_survives_invalid_utf8_and_keeps_serving() {
        let idx = index();
        let mut input: Vec<u8> = Vec::new();
        input.extend_from_slice(b"0.1 0.1\n");
        input.extend_from_slice(&[0xFF, 0xFE, b'\n']); // not UTF-8
        input.extend_from_slice(b"bogus query\n");
        input.extend_from_slice(b"0.9 0.9\n");
        let mut out = Vec::new();
        let stats = serve_queries(&idx, &input[..], &mut out).unwrap();
        assert_eq!(stats.answered, 2);
        assert_eq!(stats.errors, 2);
        let text = String::from_utf8(out).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("leaf="));
        assert!(lines[1].starts_with("error:"));
        assert!(lines[2].starts_with("error:"));
        assert!(lines[3].starts_with("leaf="));
    }
}
