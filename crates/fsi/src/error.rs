//! The one error type of the facade.
//!
//! Every crate in the workspace keeps its own focused error enum
//! (`GeoError`, `CoreError`, `MlError`, `DataError`, `FairnessError`,
//! `PipelineError`, `ServeError`) so library layers stay independent;
//! [`FsiError`] unifies them at the facade boundary. Conversions
//! *flatten*: a `PipelineError::Ml(e)` arriving through `From` becomes
//! [`FsiError::Ml`], not a nested pipeline variant, so callers match one
//! level of structure no matter how deep the failure originated. The
//! original error is always reachable through
//! [`std::error::Error::source`].

use fsi_core::CoreError;
use fsi_data::DataError;
use fsi_fairness::FairnessError;
use fsi_geo::GeoError;
use fsi_ml::MlError;
use fsi_pipeline::PipelineError;
use fsi_serve::ServeError;
use std::fmt;

/// Any failure the `fsi` facade can produce, from dataset loading to
/// index serving.
///
/// Marked `#[non_exhaustive]`: downstream matches must carry a wildcard
/// arm, so new pipeline stages can add variants without a breaking
/// change.
#[derive(Debug)]
#[non_exhaustive]
pub enum FsiError {
    /// Geometry failed (grids, rectangles, partitions, Voronoi).
    Geo(GeoError),
    /// Index construction failed (KD-tree / quadtree builders).
    Core(CoreError),
    /// Model training or scoring failed.
    Ml(MlError),
    /// Dataset handling failed (CSV, encoding, synthesis).
    Data(DataError),
    /// Fairness metric computation failed.
    Fairness(FairnessError),
    /// Compiling, querying or rebuilding a served index failed.
    Serve(ServeError),
    /// A spec or builder chain is invalid (caught before any work runs).
    InvalidSpec(String),
    /// A protocol message failed to encode, decode or validate.
    Proto(fsi_proto::ProtoError),
    /// An HTTP transport round-trip came back non-2xx.
    Http {
        /// The HTTP status code.
        status: u16,
        /// The response body (usually an error envelope).
        body: String,
    },
    /// Reading or writing a report/spec file failed.
    Io(std::io::Error),
    /// Serializing or deserializing a spec/report failed.
    Json(serde_json::Error),
}

impl fmt::Display for FsiError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FsiError::Geo(e) => write!(f, "geometry: {e}"),
            FsiError::Core(e) => write!(f, "index construction: {e}"),
            FsiError::Ml(e) => write!(f, "model: {e}"),
            FsiError::Data(e) => write!(f, "data: {e}"),
            FsiError::Fairness(e) => write!(f, "fairness: {e}"),
            FsiError::Serve(e) => write!(f, "serving: {e}"),
            FsiError::InvalidSpec(msg) => write!(f, "invalid pipeline spec: {msg}"),
            FsiError::Proto(e) => write!(f, "protocol: {e}"),
            FsiError::Http { status, body } => {
                write!(f, "http status {status}: {body}")
            }
            FsiError::Io(e) => write!(f, "i/o: {e}"),
            FsiError::Json(e) => write!(f, "json: {e}"),
        }
    }
}

impl std::error::Error for FsiError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FsiError::Geo(e) => Some(e),
            FsiError::Core(e) => Some(e),
            FsiError::Ml(e) => Some(e),
            FsiError::Data(e) => Some(e),
            FsiError::Fairness(e) => Some(e),
            FsiError::Serve(e) => Some(e),
            FsiError::InvalidSpec(_) => None,
            FsiError::Proto(e) => Some(e),
            FsiError::Http { .. } => None,
            FsiError::Io(e) => Some(e),
            FsiError::Json(e) => Some(e),
        }
    }
}

impl From<fsi_proto::ProtoError> for FsiError {
    fn from(e: fsi_proto::ProtoError) -> Self {
        FsiError::Proto(e)
    }
}

impl From<GeoError> for FsiError {
    fn from(e: GeoError) -> Self {
        FsiError::Geo(e)
    }
}
impl From<CoreError> for FsiError {
    fn from(e: CoreError) -> Self {
        FsiError::Core(e)
    }
}
impl From<MlError> for FsiError {
    fn from(e: MlError) -> Self {
        FsiError::Ml(e)
    }
}
impl From<DataError> for FsiError {
    fn from(e: DataError) -> Self {
        FsiError::Data(e)
    }
}
impl From<FairnessError> for FsiError {
    fn from(e: FairnessError) -> Self {
        FsiError::Fairness(e)
    }
}
impl From<std::io::Error> for FsiError {
    fn from(e: std::io::Error) -> Self {
        FsiError::Io(e)
    }
}
impl From<serde_json::Error> for FsiError {
    fn from(e: serde_json::Error) -> Self {
        FsiError::Json(e)
    }
}

impl From<PipelineError> for FsiError {
    /// Flattens: the lower-layer error wrapped by the pipeline surfaces
    /// as its own top-level variant, and invalid-config reports become
    /// [`FsiError::InvalidSpec`] — there is deliberately no
    /// `FsiError::Pipeline` variant left to match on.
    fn from(e: PipelineError) -> Self {
        match e {
            PipelineError::Core(e) => FsiError::Core(e),
            PipelineError::Data(e) => FsiError::Data(e),
            PipelineError::Fairness(e) => FsiError::Fairness(e),
            PipelineError::Geo(e) => FsiError::Geo(e),
            PipelineError::Ml(e) => FsiError::Ml(e),
            PipelineError::InvalidConfig(msg) => FsiError::InvalidSpec(msg),
        }
    }
}

impl From<ServeError> for FsiError {
    /// Flattens: pipeline errors inside serve errors are re-flattened;
    /// genuine serving failures stay [`FsiError::Serve`].
    fn from(e: ServeError) -> Self {
        match e {
            ServeError::Pipeline(inner) => FsiError::from(inner),
            other => FsiError::Serve(other),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::error::Error as _;

    #[test]
    fn conversions_flatten_nested_errors() {
        let e: FsiError = PipelineError::Ml(MlError::EmptyDataset).into();
        assert!(matches!(e, FsiError::Ml(_)), "{e:?}");
        let e: FsiError = ServeError::Pipeline(PipelineError::Geo(GeoError::NoSeeds)).into();
        assert!(matches!(e, FsiError::Geo(_)), "{e:?}");
        let e: FsiError = ServeError::TooManyLeaves {
            leaves: 70000,
            max: 65535,
        }
        .into();
        assert!(matches!(e, FsiError::Serve(_)), "{e:?}");
        let e: FsiError = PipelineError::InvalidConfig("bad".into()).into();
        assert!(matches!(e, FsiError::InvalidSpec(_)), "{e:?}");
    }

    #[test]
    fn sources_chain_to_the_origin() {
        let e: FsiError = MlError::EmptyDataset.into();
        assert!(e.source().is_some());
        assert!(e.to_string().contains("model"));
        let e = FsiError::InvalidSpec("height".into());
        assert!(e.source().is_none());
        assert!(e.to_string().contains("height"));
    }
}
