//! Offline vendored stand-in for `serde`.
//!
//! The build container cannot reach crates.io, so this crate supplies the
//! subset of serde the workspace needs: `#[derive(Serialize, Deserialize)]`
//! on plain structs and enums, routed through an in-memory [`Value`] tree
//! (the companion `serde_json` stub renders/parses that tree as real JSON).
//!
//! Design differences from real serde, on purpose:
//!
//! * Serialization is eager: [`Serialize::to_value`] builds a [`Value`]
//!   rather than driving a visitor. Fine at the sizes this workspace
//!   persists (trees, partitions, eval reports).
//! * Enums use serde's externally-tagged convention (`"Variant"` for unit
//!   variants, `{"Variant": ...}` otherwise) so the JSON stays readable.

#![forbid(unsafe_code)]

use std::collections::{BTreeMap, HashMap};
use std::fmt;

pub use serde_derive::{Deserialize, Serialize};

/// An in-memory tree mirroring the JSON data model.
///
/// Integers keep their signedness ([`Value::I64`] vs [`Value::U64`]) so
/// `u64` values above 2^53 round-trip exactly.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON `true` / `false`.
    Bool(bool),
    /// A negative integer.
    I64(i64),
    /// A non-negative integer.
    U64(u64),
    /// A floating-point number.
    F64(f64),
    /// A string.
    Str(String),
    /// An ordered sequence.
    Array(Vec<Value>),
    /// Key-value pairs, in insertion order.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Returns the object entries if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(entries) => Some(entries),
            _ => None,
        }
    }

    /// Returns the elements if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Returns the string if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// A short name for the value's type, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::I64(_) | Value::U64(_) => "integer",
            Value::F64(_) => "number",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

/// Deserialization error: a human-readable description of the mismatch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl Error {
    /// Builds an error from any displayable message.
    pub fn custom(msg: impl fmt::Display) -> Self {
        Error(msg.to_string())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "serde error: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// Types convertible into a [`Value`] tree.
pub trait Serialize {
    /// Builds the value tree for `self`.
    fn to_value(&self) -> Value;
}

/// Types reconstructible from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Rebuilds `Self`, reporting any shape mismatch as an [`Error`].
    fn from_value(value: &Value) -> Result<Self, Error>;

    /// Rebuilds `Self` for a struct field that is absent from the
    /// serialized object. The default reports a missing-field error;
    /// `Option<T>` overrides it to `Ok(None)`, which is what lets a
    /// struct grow optional fields while old serialized forms (without
    /// the field) keep decoding — real serde's `default` semantics for
    /// options.
    fn from_missing_field(field: &str) -> Result<Self, Error> {
        Err(Error::custom(format!("missing field `{field}`")))
    }
}

/// Looks up a required struct field in an object's entries.
///
/// Used by the derive-generated `Deserialize` impls.
pub fn get_field<'v>(entries: &'v [(String, Value)], name: &str) -> Result<&'v Value, Error> {
    entries
        .iter()
        .find(|(k, _)| k == name)
        .map(|(_, v)| v)
        .ok_or_else(|| Error::custom(format!("missing field `{name}`")))
}

/// Deserializes a struct field from an object's entries, routing absent
/// fields through [`Deserialize::from_missing_field`] so optional fields
/// tolerate old serialized forms that predate them.
///
/// Used by the derive-generated `Deserialize` impls.
pub fn field_or_missing<T: Deserialize>(
    entries: &[(String, Value)],
    name: &str,
) -> Result<T, Error> {
    match entries.iter().find(|(k, _)| k == name) {
        Some((_, v)) => T::from_value(v),
        None => T::from_missing_field(name),
    }
}

// ---- impls for std types ----------------------------------------------

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::custom(format!(
                "expected bool, got {}",
                other.kind()
            ))),
        }
    }
}

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::U64(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let raw = match value {
                    Value::U64(u) => *u,
                    Value::I64(i) if *i >= 0 => *i as u64,
                    other => {
                        return Err(Error::custom(format!(
                            "expected unsigned integer, got {}",
                            other.kind()
                        )))
                    }
                };
                <$t>::try_from(raw)
                    .map_err(|_| Error::custom(format!("integer {raw} out of range")))
            }
        }
    )*};
}

impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let v = *self as i64;
                if v >= 0 { Value::U64(v as u64) } else { Value::I64(v) }
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let raw: i64 = match value {
                    Value::I64(i) => *i,
                    Value::U64(u) => i64::try_from(*u)
                        .map_err(|_| Error::custom(format!("integer {u} out of range")))?,
                    other => {
                        return Err(Error::custom(format!(
                            "expected integer, got {}",
                            other.kind()
                        )))
                    }
                };
                <$t>::try_from(raw)
                    .map_err(|_| Error::custom(format!("integer {raw} out of range")))
            }
        }
    )*};
}

impl_signed!(i8, i16, i32, i64, isize);

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::F64(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                match value {
                    Value::F64(x) => Ok(*x as $t),
                    Value::I64(i) => Ok(*i as $t),
                    Value::U64(u) => Ok(*u as $t),
                    Value::Null => Ok(<$t>::NAN),
                    other => Err(Error::custom(format!(
                        "expected number, got {}",
                        other.kind()
                    ))),
                }
            }
        }
    )*};
}

impl_float!(f32, f64);

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Str(s) => Ok(s.clone()),
            other => Err(Error::custom(format!(
                "expected string, got {}",
                other.kind()
            ))),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(value: &Value) -> Result<Self, Error> {
        let s = value
            .as_str()
            .ok_or_else(|| Error::custom(format!("expected string, got {}", value.kind())))?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(Error::custom("expected a single-character string")),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        T::from_value(value).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(inner) => inner.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }

    /// An absent optional field is simply `None`.
    fn from_missing_field(_field: &str) -> Result<Self, Error> {
        Ok(None)
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        let items = value
            .as_array()
            .ok_or_else(|| Error::custom(format!("expected array, got {}", value.kind())))?;
        items.iter().map(T::from_value).collect()
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(value: &Value) -> Result<Self, Error> {
        let v: Vec<T> = Vec::from_value(value)?;
        let n = v.len();
        v.try_into()
            .map_err(|_| Error::custom(format!("expected array of length {N}, got {n}")))
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let items = value.as_array().ok_or_else(|| {
                    Error::custom(format!("expected array, got {}", value.kind()))
                })?;
                let expected = [$($idx),+].len();
                if items.len() != expected {
                    return Err(Error::custom(format!(
                        "expected tuple of {expected}, got {}",
                        items.len()
                    )));
                }
                Ok(($($name::from_value(&items[$idx])?,)+))
            }
        }
    )*};
}

impl_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        let entries = value
            .as_object()
            .ok_or_else(|| Error::custom(format!("expected object, got {}", value.kind())))?;
        entries
            .iter()
            .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
            .collect()
    }
}

impl<V: Serialize> Serialize for HashMap<String, V> {
    fn to_value(&self) -> Value {
        // Sort for deterministic output; the workspace's persistence tests
        // compare serialized trees byte-for-byte.
        let mut entries: Vec<_> = self
            .iter()
            .map(|(k, v)| (k.clone(), v.to_value()))
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(entries)
    }
}

impl<V: Deserialize> Deserialize for HashMap<String, V> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        let entries = value
            .as_object()
            .ok_or_else(|| Error::custom(format!("expected object, got {}", value.kind())))?;
        entries
            .iter()
            .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
            .collect()
    }
}

impl Serialize for std::time::Duration {
    /// Matches real serde's representation: `{"secs": u64, "nanos": u32}`.
    fn to_value(&self) -> Value {
        Value::Object(vec![
            ("secs".to_string(), Value::U64(self.as_secs())),
            ("nanos".to_string(), Value::U64(self.subsec_nanos().into())),
        ])
    }
}

impl Deserialize for std::time::Duration {
    fn from_value(value: &Value) -> Result<Self, Error> {
        let entries = value
            .as_object()
            .ok_or_else(|| Error::custom(format!("expected object, got {}", value.kind())))?;
        let secs = u64::from_value(get_field(entries, "secs")?)?;
        let nanos = u32::from_value(get_field(entries, "nanos")?)?;
        if nanos >= 1_000_000_000 {
            return Err(Error::custom(format!(
                "duration nanos {nanos} out of range (must be < 1e9)"
            )));
        }
        Ok(std::time::Duration::new(secs, nanos))
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(value: &Value) -> Result<Self, Error> {
        Ok(value.clone())
    }
}

impl Serialize for () {
    fn to_value(&self) -> Value {
        Value::Null
    }
}

impl Deserialize for () {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Null => Ok(()),
            other => Err(Error::custom(format!(
                "expected null, got {}",
                other.kind()
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn duration_round_trips_like_real_serde() {
        for d in [
            Duration::ZERO,
            Duration::from_nanos(1),
            Duration::new(u64::MAX, 999_999_999),
            Duration::from_micros(1234),
        ] {
            let v = d.to_value();
            assert_eq!(
                v,
                Value::Object(vec![
                    ("secs".into(), Value::U64(d.as_secs())),
                    ("nanos".into(), Value::U64(d.subsec_nanos().into())),
                ])
            );
            assert_eq!(Duration::from_value(&v).unwrap(), d);
        }
    }

    #[test]
    fn absent_fields_default_options_but_fail_required_types() {
        let entries: Vec<(String, Value)> = vec![("present".into(), Value::U64(7))];
        // Present fields decode normally, optional or not.
        assert_eq!(field_or_missing::<u64>(&entries, "present").unwrap(), 7);
        assert_eq!(
            field_or_missing::<Option<u64>>(&entries, "present").unwrap(),
            Some(7)
        );
        // Absent optional fields decode as None (old wire forms keep
        // working when a struct grows an Option field)...
        assert_eq!(
            field_or_missing::<Option<u64>>(&entries, "absent").unwrap(),
            None
        );
        // ...while absent required fields still fail loudly.
        let err = field_or_missing::<u64>(&entries, "absent").unwrap_err();
        assert!(err.to_string().contains("missing field `absent`"), "{err}");
    }

    #[test]
    fn duration_rejects_malformed_values() {
        assert!(Duration::from_value(&Value::U64(5)).is_err());
        let overflow = Value::Object(vec![
            ("secs".into(), Value::U64(0)),
            ("nanos".into(), Value::U64(1_000_000_000)),
        ]);
        assert!(Duration::from_value(&overflow).is_err());
        let missing = Value::Object(vec![("secs".into(), Value::U64(0))]);
        assert!(Duration::from_value(&missing).is_err());
    }
}
