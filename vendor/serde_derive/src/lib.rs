//! Derive macros for the vendored `serde` stand-in.
//!
//! Parses the derive input by walking the raw token stream (the real
//! `syn`/`quote` stack is unavailable offline) and emits `Serialize` /
//! `Deserialize` impls against the `Value` data model. Supported shapes —
//! everything this workspace derives on:
//!
//! * structs with named fields, tuple structs, unit structs
//! * enums with unit, tuple and struct variants (externally tagged)
//!
//! Generic types are intentionally rejected with a compile error.

use proc_macro::{Delimiter, TokenStream, TokenTree};
use std::fmt::Write;

/// Derives `serde::Serialize` (the vendored, `Value`-based trait).
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, Mode::Serialize)
}

/// Derives `serde::Deserialize` (the vendored, `Value`-based trait).
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, Mode::Deserialize)
}

#[derive(Clone, Copy, PartialEq)]
enum Mode {
    Serialize,
    Deserialize,
}

enum Shape {
    UnitStruct,
    TupleStruct(usize),
    NamedStruct(Vec<String>),
    Enum(Vec<Variant>),
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum VariantKind {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

fn expand(input: TokenStream, mode: Mode) -> TokenStream {
    match parse(input) {
        Ok((name, shape)) => {
            let code = match mode {
                Mode::Serialize => gen_serialize(&name, &shape),
                Mode::Deserialize => gen_deserialize(&name, &shape),
            };
            code.parse().expect("serde_derive generated invalid Rust")
        }
        Err(msg) => format!("compile_error!({msg:?});").parse().unwrap(),
    }
}

// ---- token-stream parsing ---------------------------------------------

fn parse(input: TokenStream) -> Result<(String, Shape), String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;

    skip_attrs_and_vis(&tokens, &mut i);

    let keyword = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected `struct` or `enum`, got {other:?}")),
    };
    i += 1;

    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected type name, got {other:?}")),
    };
    i += 1;

    if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!(
            "serde_derive (vendored): generic type `{name}` is not supported"
        ));
    }

    match keyword.as_str() {
        "struct" => match tokens.get(i) {
            None | Some(TokenTree::Punct(_)) => Ok((name, Shape::UnitStruct)),
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Ok((name, Shape::NamedStruct(field_names(g.stream())?)))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Ok((name, Shape::TupleStruct(count_items(g.stream()))))
            }
            other => Err(format!("unexpected token in struct `{name}`: {other:?}")),
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Ok((name, Shape::Enum(variants(g.stream())?)))
            }
            other => Err(format!("expected enum body for `{name}`, got {other:?}")),
        },
        other => Err(format!("serde_derive: cannot derive for `{other}` items")),
    }
}

/// Advances `i` past any `#[...]` attributes and a `pub` / `pub(...)`
/// visibility modifier.
fn skip_attrs_and_vis(tokens: &[TokenTree], i: &mut usize) {
    loop {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *i += 1; // '#'
                if matches!(tokens.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket)
                {
                    *i += 1;
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if matches!(tokens.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    *i += 1;
                }
            }
            _ => return,
        }
    }
}

/// Splits a token stream at top-level commas, treating `<...>` generic
/// argument lists as nested (they are bare puncts, not groups). `->` is
/// recognized so return-type arrows don't unbalance the depth count.
fn split_top_level(stream: TokenStream) -> Vec<Vec<TokenTree>> {
    let mut segments = vec![Vec::new()];
    let mut angle_depth = 0usize;
    let mut prev_char = ' ';
    for tt in stream {
        match &tt {
            TokenTree::Punct(p) => {
                let c = p.as_char();
                match c {
                    '<' => angle_depth += 1,
                    '>' if prev_char != '-' => angle_depth = angle_depth.saturating_sub(1),
                    ',' if angle_depth == 0 => {
                        prev_char = ',';
                        segments.push(Vec::new());
                        continue;
                    }
                    _ => {}
                }
                prev_char = c;
            }
            _ => prev_char = ' ',
        }
        segments.last_mut().unwrap().push(tt);
    }
    segments.retain(|seg| !seg.is_empty());
    segments
}

fn count_items(stream: TokenStream) -> usize {
    split_top_level(stream).len()
}

/// Extracts field names from a named-fields body (`a: T, pub b: U, ...`).
fn field_names(stream: TokenStream) -> Result<Vec<String>, String> {
    split_top_level(stream)
        .into_iter()
        .map(|seg| {
            let mut i = 0;
            skip_attrs_and_vis(&seg, &mut i);
            match seg.get(i) {
                Some(TokenTree::Ident(id)) => Ok(id.to_string()),
                other => Err(format!("expected field name, got {other:?}")),
            }
        })
        .collect()
}

/// Extracts variants from an enum body.
fn variants(stream: TokenStream) -> Result<Vec<Variant>, String> {
    split_top_level(stream)
        .into_iter()
        .map(|seg| {
            let mut i = 0;
            skip_attrs_and_vis(&seg, &mut i);
            let name = match seg.get(i) {
                Some(TokenTree::Ident(id)) => id.to_string(),
                other => return Err(format!("expected variant name, got {other:?}")),
            };
            i += 1;
            let kind = match seg.get(i) {
                None | Some(TokenTree::Punct(_)) => VariantKind::Unit, // unit or `= discr`
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    VariantKind::Named(field_names(g.stream())?)
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    VariantKind::Tuple(count_items(g.stream()))
                }
                other => return Err(format!("unexpected token in variant `{name}`: {other:?}")),
            };
            Ok(Variant { name, kind })
        })
        .collect()
}

// ---- code generation ---------------------------------------------------

fn object_literal(pairs: &[(String, String)]) -> String {
    let mut out = String::from("::serde::Value::Object(::std::vec![");
    for (key, expr) in pairs {
        let _ = write!(out, "(::std::string::String::from({key:?}), {expr}),");
    }
    out.push_str("])");
    out
}

fn array_literal(exprs: &[String]) -> String {
    format!("::serde::Value::Array(::std::vec![{}])", exprs.join(","))
}

fn gen_serialize(name: &str, shape: &Shape) -> String {
    let body = match shape {
        Shape::UnitStruct => "::serde::Value::Null".to_string(),
        Shape::TupleStruct(arity) => {
            let exprs: Vec<String> = (0..*arity)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            array_literal(&exprs)
        }
        Shape::NamedStruct(fields) => {
            let pairs: Vec<(String, String)> = fields
                .iter()
                .map(|f| {
                    (
                        f.clone(),
                        format!("::serde::Serialize::to_value(&self.{f})"),
                    )
                })
                .collect();
            object_literal(&pairs)
        }
        Shape::Enum(vars) => {
            let mut arms = String::new();
            for v in vars {
                let vn = &v.name;
                match &v.kind {
                    VariantKind::Unit => {
                        let _ = write!(
                            arms,
                            "{name}::{vn} => ::serde::Value::Str(::std::string::String::from({vn:?})),"
                        );
                    }
                    VariantKind::Tuple(arity) => {
                        let binds: Vec<String> = (0..*arity).map(|i| format!("__v{i}")).collect();
                        let exprs: Vec<String> = binds
                            .iter()
                            .map(|b| format!("::serde::Serialize::to_value({b})"))
                            .collect();
                        let inner = array_literal(&exprs);
                        let tagged = object_literal(&[(vn.clone(), inner)]);
                        let _ = write!(arms, "{name}::{vn}({}) => {tagged},", binds.join(","));
                    }
                    VariantKind::Named(fields) => {
                        let pairs: Vec<(String, String)> = fields
                            .iter()
                            .map(|f| (f.clone(), format!("::serde::Serialize::to_value({f})")))
                            .collect();
                        let inner = object_literal(&pairs);
                        let tagged = object_literal(&[(vn.clone(), inner)]);
                        let _ =
                            write!(arms, "{name}::{vn} {{ {} }} => {tagged},", fields.join(","));
                    }
                }
            }
            format!("match self {{ {arms} }}")
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
         }}"
    )
}

fn named_fields_ctor(path: &str, fields: &[String], entries_var: &str) -> String {
    let mut out = format!("::std::result::Result::Ok({path} {{");
    for f in fields {
        // Absent fields go through `Deserialize::from_missing_field`, so
        // `Option` fields decode as `None` from serialized forms that
        // predate them instead of failing the whole struct.
        let _ = write!(
            out,
            "{f}: ::serde::field_or_missing({entries_var}, {f:?})?,"
        );
    }
    out.push_str("})");
    out
}

fn tuple_ctor(path: &str, arity: usize, items_var: &str) -> String {
    let exprs: Vec<String> = (0..arity)
        .map(|i| format!("::serde::Deserialize::from_value(&{items_var}[{i}])?"))
        .collect();
    format!(
        "if {items_var}.len() != {arity} {{\n\
             return ::std::result::Result::Err(::serde::Error::custom(\n\
                 format!(\"expected {arity} elements for `{path}`, got {{}}\", {items_var}.len())));\n\
         }}\n\
         ::std::result::Result::Ok({path}({}))",
        exprs.join(",")
    )
}

fn gen_deserialize(name: &str, shape: &Shape) -> String {
    let body = match shape {
        Shape::UnitStruct => format!(
            "match value {{\n\
                 ::serde::Value::Null => ::std::result::Result::Ok({name}),\n\
                 other => ::std::result::Result::Err(::serde::Error::custom(\n\
                     format!(\"expected null for unit struct `{name}`, got {{}}\", other.kind()))),\n\
             }}"
        ),
        Shape::TupleStruct(arity) => format!(
            "let items = value.as_array().ok_or_else(|| ::serde::Error::custom(\n\
                 format!(\"expected array for `{name}`, got {{}}\", value.kind())))?;\n\
             {}",
            tuple_ctor(name, *arity, "items")
        ),
        Shape::NamedStruct(fields) => format!(
            "let entries = value.as_object().ok_or_else(|| ::serde::Error::custom(\n\
                 format!(\"expected object for `{name}`, got {{}}\", value.kind())))?;\n\
             {}",
            named_fields_ctor(name, fields, "entries")
        ),
        Shape::Enum(vars) => {
            let mut unit_arms = String::new();
            let mut tagged_arms = String::new();
            for v in vars {
                let vn = &v.name;
                let path = format!("{name}::{vn}");
                match &v.kind {
                    VariantKind::Unit => {
                        let _ = write!(
                            unit_arms,
                            "{vn:?} => ::std::result::Result::Ok({path}),"
                        );
                    }
                    VariantKind::Tuple(arity) => {
                        let _ = write!(
                            tagged_arms,
                            "{vn:?} => {{\n\
                                 let items = __inner.as_array().ok_or_else(|| ::serde::Error::custom(\n\
                                     format!(\"expected array for `{path}`, got {{}}\", __inner.kind())))?;\n\
                                 {}\n\
                             }}",
                            tuple_ctor(&path, *arity, "items")
                        );
                    }
                    VariantKind::Named(fields) => {
                        let _ = write!(
                            tagged_arms,
                            "{vn:?} => {{\n\
                                 let entries = __inner.as_object().ok_or_else(|| ::serde::Error::custom(\n\
                                     format!(\"expected object for `{path}`, got {{}}\", __inner.kind())))?;\n\
                                 {}\n\
                             }}",
                            named_fields_ctor(&path, fields, "entries")
                        );
                    }
                }
            }
            format!(
                "match value {{\n\
                     ::serde::Value::Str(s) => match s.as_str() {{\n\
                         {unit_arms}\n\
                         other => ::std::result::Result::Err(::serde::Error::custom(\n\
                             format!(\"unknown unit variant `{{other}}` for enum `{name}`\"))),\n\
                     }},\n\
                     ::serde::Value::Object(entries) if entries.len() == 1 => {{\n\
                         let (__tag, __inner) = &entries[0];\n\
                         match __tag.as_str() {{\n\
                             {tagged_arms}\n\
                             other => ::std::result::Result::Err(::serde::Error::custom(\n\
                                 format!(\"unknown variant `{{other}}` for enum `{name}`\"))),\n\
                         }}\n\
                     }}\n\
                     other => ::std::result::Result::Err(::serde::Error::custom(\n\
                         format!(\"expected enum `{name}`, got {{}}\", other.kind()))),\n\
                 }}"
            )
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Deserialize for {name} {{\n\
             fn from_value(value: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                 {body}\n\
             }}\n\
         }}"
    )
}
