//! Offline vendored stand-in for the `rand` crate.
//!
//! The build container has no network access to crates.io, so this crate
//! provides the (small) subset of the rand 0.9 API the workspace uses:
//! [`Rng`], [`RngExt`], [`SeedableRng`] and [`rngs::StdRng`]. The generator
//! is a deterministic xoshiro256** seeded via SplitMix64 — statistically
//! solid for tests and synthetic data, and bit-stable across runs and
//! platforms, which the workspace's determinism suite relies on.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// A source of randomness: anything that can produce uniform `u64`s.
pub trait Rng {
    /// Returns the next uniformly distributed `u64`.
    fn next_u64(&mut self) -> u64;
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Extension methods for [`Rng`]: typed sampling (rand 0.9 naming).
pub trait RngExt: Rng {
    /// Samples a value of type `T` from its natural uniform distribution
    /// (`f64` in `[0, 1)`, `bool` fair coin, integers full-range).
    fn random<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Samples uniformly from a range. Panics if the range is empty.
    fn random_range<R: SampleRange>(&mut self, range: R) -> R::Output {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`. Panics unless `0 ≤ p ≤ 1`.
    fn random_bool(&mut self, p: f64) -> bool {
        assert!(
            (0.0..=1.0).contains(&p),
            "random_bool: p = {p} not in [0, 1]"
        );
        f64_from_u64(self.next_u64()) < p
    }
}

impl<R: Rng + ?Sized> RngExt for R {}

/// Types samplable from their natural uniform distribution.
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

/// Maps a `u64` to `[0, 1)` using the top 53 bits.
fn f64_from_u64(x: u64) -> f64 {
    (x >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

impl Standard for f64 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        f64_from_u64(rng.next_u64())
    }
}

impl Standard for bool {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u64 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

/// Ranges that [`RngExt::random_range`] can sample from.
pub trait SampleRange {
    /// The sampled value type.
    type Output;
    /// Draws one value uniformly from the range.
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> Self::Output;
}

/// Rejection-free (modulo-bias-free) uniform integer in `[0, n)`, `n ≥ 1`,
/// via Lemire's multiply-shift with rejection.
fn uniform_below<R: Rng + ?Sized>(rng: &mut R, n: u64) -> u64 {
    debug_assert!(n >= 1);
    loop {
        let x = rng.next_u64();
        let (hi, lo) = {
            let m = (x as u128) * (n as u128);
            ((m >> 64) as u64, m as u64)
        };
        if lo >= n || lo >= n.wrapping_neg() % n {
            return hi;
        }
    }
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "random_range: empty range");
                let span = (self.end - self.start) as u64;
                self.start + uniform_below(rng, span) as $t
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "random_range: empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return lo + rng.next_u64() as $t;
                }
                lo + uniform_below(rng, span + 1) as $t
            }
        }
    )*};
}

impl_int_range!(usize, u64, u32);

macro_rules! impl_signed_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "random_range: empty range");
                let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                self.start.wrapping_add(uniform_below(rng, span) as $t)
            }
        }
    )*};
}

impl_signed_range!(i64, i32);

impl SampleRange for Range<f64> {
    type Output = f64;
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "random_range: empty range");
        let u = f64_from_u64(rng.next_u64());
        self.start + u * (self.end - self.start)
    }
}

impl SampleRange for RangeInclusive<f64> {
    type Output = f64;
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "random_range: empty range");
        let u = f64_from_u64(rng.next_u64());
        lo + u * (hi - lo)
    }
}

/// RNGs constructible from a seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generator types.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256**
    /// seeded via SplitMix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let [s0, s1, s2, s3] = self.s;
            let result = s1.wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s1 << 17;
            let mut s = [s0, s1, s2, s3];
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            self.s = s;
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_across_instances() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x = rng.random_range(3usize..10);
            assert!((3..10).contains(&x));
            let y = rng.random_range(-2.5f64..4.0);
            assert!((-2.5..4.0).contains(&y));
            let z = rng.random_range(5u64..=5);
            assert_eq!(z, 5);
            let f: f64 = rng.random();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn bool_probability_roughly_respected() {
        let mut rng = StdRng::seed_from_u64(2);
        let hits = (0..10_000).filter(|_| rng.random_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "hits = {hits}");
    }
}
