//! Offline vendored stand-in for `proptest`.
//!
//! Supports the subset of the proptest surface this workspace's
//! property-based tests use: the [`proptest!`] macro over `pat in strategy`
//! arguments, range and tuple strategies, [`collection::vec`],
//! `any::<T>()`, `prop_assert!`/`prop_assert_eq!` and
//! [`ProptestConfig::with_cases`](config::ProptestConfig::with_cases).
//!
//! Differences from the real crate, on purpose:
//!
//! * **No shrinking.** A failing case panics with the generated inputs in
//!   the seed RNG's deterministic stream; re-running reproduces it exactly.
//! * **Deterministic seeding.** The RNG seed is derived from the test
//!   function's name, so failures are reproducible without a persistence
//!   file (`proptest-regressions/` never appears).

#![forbid(unsafe_code)]

pub mod strategy {
    //! The [`Strategy`] trait: how test inputs are generated.

    use crate::test_runner::TestRng;
    use rand::RngExt;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The type of generated values.
        type Value;
        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;
    }

    macro_rules! impl_int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.rng.random_range(self.clone())
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.rng.random_range(self.clone())
                }
            }
        )*};
    }

    impl_int_range_strategy!(usize, u64, u32);

    impl Strategy for Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            rng.rng.random_range(self.clone())
        }
    }

    impl Strategy for RangeInclusive<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            rng.rng.random_range(self.clone())
        }
    }

    macro_rules! impl_tuple_strategy {
        ($(($($name:ident : $idx:tt),+))*) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy! {
        (A: 0, B: 1)
        (A: 0, B: 1, C: 2)
        (A: 0, B: 1, C: 2, D: 3)
    }
}

pub mod arbitrary {
    //! `any::<T>()` — the type's canonical full-range strategy.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::RngExt;
    use std::marker::PhantomData;

    /// Types with a canonical full-range strategy.
    pub trait Arbitrary: Sized {
        /// Draws one arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.rng.random()
        }
    }

    impl Arbitrary for u64 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.rng.random()
        }
    }

    impl Arbitrary for u32 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.rng.random()
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            // Finite full-range doubles: uniform in sign and exponent-ish
            // via a uniform mantissa scaled by a random power of two.
            let m: f64 = rng.rng.random();
            let exp = rng.rng.random_range(-64i64..64) as i32;
            let sign = if rng.rng.random::<bool>() { 1.0 } else { -1.0 };
            sign * m * (2f64).powi(exp)
        }
    }

    /// The strategy returned by [`any`].
    pub struct Any<T>(PhantomData<T>);

    /// Returns the canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// Strategy for `Vec<T>` with a length drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Generates vectors whose elements come from `element` and whose
    /// length is uniform in `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.clone().generate(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod config {
    //! Per-test configuration.

    /// Controls how many cases each property runs.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of generated cases per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }
}

pub mod test_runner {
    //! The RNG driving generation.

    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Deterministic generation RNG, seeded from the test's name.
    pub struct TestRng {
        /// The underlying generator (public to the strategy impls).
        pub rng: StdRng,
    }

    impl TestRng {
        /// Builds the RNG for the named test (FNV-1a over the name).
        pub fn deterministic(test_name: &str) -> Self {
            let mut hash: u64 = 0xcbf29ce484222325;
            for byte in test_name.bytes() {
                hash ^= byte as u64;
                hash = hash.wrapping_mul(0x100000001b3);
            }
            TestRng {
                rng: StdRng::seed_from_u64(hash),
            }
        }
    }
}

pub mod prelude {
    //! Everything a property-based test module needs.

    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::config::ProptestConfig;
    pub use crate::strategy::Strategy;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Asserts a condition inside a property; expands to a plain `assert!`
/// (no shrinking, no case-number reporting — re-run to reproduce, the
/// generation stream is deterministic).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Declares property-based tests.
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(16))]
///
///     #[test]
///     fn holds(x in 0usize..10, flag in any::<bool>()) {
///         prop_assert!(x < 10 || flag);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    ( #![proptest_config($config:expr)] $($rest:tt)* ) => {
        $crate::__proptest_impl! { ($config) $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_impl! { ($crate::config::ProptestConfig::default()) $($rest)* }
    };
}

/// Internal expansion of [`proptest!`]; not part of the public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($config:expr) ) => {};
    ( ($config:expr)
      $(#[$meta:meta])*
      fn $name:ident ( $($arg:ident in $strategy:expr),+ $(,)? ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config = $config;
            let mut __rng =
                $crate::test_runner::TestRng::deterministic(concat!(module_path!(), "::", stringify!($name)));
            for __case in 0..__config.cases {
                $(
                    let $arg = $crate::strategy::Strategy::generate(&($strategy), &mut __rng);
                )+
                $body
            }
        }
        $crate::__proptest_impl! { ($config) $($rest)* }
    };
}
