//! Sample statistics for benchmark timings.
//!
//! All inputs are per-iteration durations in nanoseconds. Summary
//! statistics are computed after Tukey IQR outlier rejection: samples
//! outside `[Q1 − 1.5·IQR, Q3 + 1.5·IQR]` are discarded (but counted),
//! which keeps a stray page fault or scheduler preemption from skewing
//! the mean and standard deviation on a noisy runner.

/// Summary statistics over one benchmark's samples, post-rejection.
#[derive(Debug, Clone, PartialEq)]
pub struct Stats {
    /// Samples kept after IQR outlier rejection.
    pub kept: usize,
    /// Samples rejected as IQR outliers.
    pub rejected: usize,
    /// Arithmetic mean of the kept samples (ns).
    pub mean_ns: f64,
    /// Median of the kept samples (ns).
    pub median_ns: f64,
    /// Sample standard deviation of the kept samples (ns); 0 when `kept < 2`.
    pub std_dev_ns: f64,
    /// 95th percentile of the kept samples (ns).
    pub p95_ns: f64,
    /// Smallest kept sample (ns).
    pub min_ns: f64,
    /// Largest kept sample (ns).
    pub max_ns: f64,
}

/// Linear-interpolation percentile (the numpy `linear` method).
///
/// `sorted` must be ascending and non-empty; `p` is in `[0, 100]`.
pub fn percentile(sorted: &[f64], p: f64) -> f64 {
    assert!(!sorted.is_empty(), "percentile of an empty sample set");
    let rank = (p / 100.0) * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = rank - lo as f64;
        sorted[lo] + (sorted[hi] - sorted[lo]) * frac
    }
}

/// The Tukey fence `[Q1 − 1.5·IQR, Q3 + 1.5·IQR]` for an ascending sample set.
pub fn tukey_fences(sorted: &[f64]) -> (f64, f64) {
    let q1 = percentile(sorted, 25.0);
    let q3 = percentile(sorted, 75.0);
    let iqr = q3 - q1;
    (q1 - 1.5 * iqr, q3 + 1.5 * iqr)
}

/// Computes [`Stats`] over `samples` (per-iteration ns), rejecting IQR
/// outliers first. Returns `None` for an empty input.
pub fn compute(samples: &[f64]) -> Option<Stats> {
    if samples.is_empty() {
        return None;
    }
    let mut sorted: Vec<f64> = samples.to_vec();
    sorted.sort_by(|a, b| a.total_cmp(b));
    let (lo, hi) = tukey_fences(&sorted);
    let kept: Vec<f64> = sorted
        .iter()
        .copied()
        .filter(|&x| x >= lo && x <= hi)
        .collect();
    // The fences always contain the quartiles, so `kept` is non-empty.
    let rejected = sorted.len() - kept.len();
    let n = kept.len();
    let mean = kept.iter().sum::<f64>() / n as f64;
    let var = if n < 2 {
        0.0
    } else {
        kept.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1) as f64
    };
    Some(Stats {
        kept: n,
        rejected,
        mean_ns: mean,
        median_ns: percentile(&kept, 50.0),
        std_dev_ns: var.sqrt(),
        p95_ns: percentile(&kept, 95.0),
        min_ns: kept[0],
        max_ns: kept[n - 1],
    })
}

/// Formats a nanosecond quantity with an adaptive unit (`ns`/`µs`/`ms`/`s`).
pub fn fmt_ns(ns: f64) -> String {
    if !ns.is_finite() {
        return format!("{ns}");
    }
    let (value, unit) = if ns < 1_000.0 {
        (ns, "ns")
    } else if ns < 1_000_000.0 {
        (ns / 1_000.0, "µs")
    } else if ns < 1_000_000_000.0 {
        (ns / 1_000_000.0, "ms")
    } else {
        (ns / 1_000_000_000.0, "s")
    };
    if value < 10.0 {
        format!("{value:.3}{unit}")
    } else if value < 100.0 {
        format!("{value:.2}{unit}")
    } else {
        format!("{value:.1}{unit}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_interpolates_linearly() {
        let s = [10.0, 20.0, 30.0, 40.0];
        assert_eq!(percentile(&s, 0.0), 10.0);
        assert_eq!(percentile(&s, 100.0), 40.0);
        assert_eq!(percentile(&s, 50.0), 25.0);
        // rank = 0.95 * 3 = 2.85 → 30 + 0.85 * 10.
        assert!((percentile(&s, 95.0) - 38.5).abs() < 1e-12);
    }

    #[test]
    fn percentile_single_sample_is_constant() {
        let s = [7.0];
        for p in [0.0, 37.0, 50.0, 95.0, 100.0] {
            assert_eq!(percentile(&s, p), 7.0);
        }
    }

    #[test]
    fn stats_on_known_array() {
        // 1..=5: mean 3, median 3, sample std dev sqrt(2.5), no outliers.
        let stats = compute(&[1.0, 2.0, 3.0, 4.0, 5.0]).unwrap();
        assert_eq!(stats.kept, 5);
        assert_eq!(stats.rejected, 0);
        assert_eq!(stats.mean_ns, 3.0);
        assert_eq!(stats.median_ns, 3.0);
        assert!((stats.std_dev_ns - 2.5f64.sqrt()).abs() < 1e-12);
        assert_eq!(stats.min_ns, 1.0);
        assert_eq!(stats.max_ns, 5.0);
        // rank = 0.95 * 4 = 3.8 → 4 + 0.8 * 1.
        assert!((stats.p95_ns - 4.8).abs() < 1e-12);
    }

    #[test]
    fn iqr_rejects_a_spike_but_keeps_the_bulk() {
        // Nine tight samples plus one 100x spike (a GC pause, say).
        let mut samples = vec![10.0, 11.0, 9.0, 10.5, 9.5, 10.2, 9.8, 10.1, 9.9];
        samples.push(1000.0);
        let stats = compute(&samples).unwrap();
        assert_eq!(stats.rejected, 1);
        assert_eq!(stats.kept, 9);
        assert!(stats.max_ns <= 11.0, "spike survived: {}", stats.max_ns);
        assert!((stats.mean_ns - 10.0).abs() < 0.2);
    }

    #[test]
    fn iqr_keeps_everything_when_samples_are_uniformly_spread() {
        let samples: Vec<f64> = (1..=20).map(|i| i as f64).collect();
        let stats = compute(&samples).unwrap();
        assert_eq!(stats.rejected, 0);
        assert_eq!(stats.kept, 20);
    }

    #[test]
    fn degenerate_inputs() {
        assert!(compute(&[]).is_none());
        let one = compute(&[42.0]).unwrap();
        assert_eq!(one.kept, 1);
        assert_eq!(one.mean_ns, 42.0);
        assert_eq!(one.median_ns, 42.0);
        assert_eq!(one.std_dev_ns, 0.0);
        assert_eq!(one.p95_ns, 42.0);
        // All-identical samples: IQR = 0, fence collapses to the value.
        let same = compute(&[5.0; 8]).unwrap();
        assert_eq!(same.kept, 8);
        assert_eq!(same.rejected, 0);
        assert_eq!(same.std_dev_ns, 0.0);
    }

    #[test]
    fn fmt_ns_picks_sensible_units() {
        assert_eq!(fmt_ns(512.0), "512.0ns");
        assert_eq!(fmt_ns(1_500.0), "1.500µs");
        assert_eq!(fmt_ns(23_400_000.0), "23.40ms");
        assert_eq!(fmt_ns(2_650_000_000.0), "2.650s");
    }
}
