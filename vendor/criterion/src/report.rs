//! Machine-readable benchmark artifacts and baseline comparison.
//!
//! Two JSON shapes live here:
//!
//! * **Per-bench artifacts** — one file per benchmark under
//!   `target/criterion/<group>/<bench>.json`, holding that run's
//!   [`Stats`] plus the raw samples.
//! * **Baselines** — a single file mapping full benchmark ids to their
//!   recorded statistics, written by `--save-baseline` and read by
//!   `--baseline`. The `fsi-bench` runner reuses the same shape for the
//!   repo-root `BENCH_baseline.json`.
//!
//! Comparison is median-vs-median with a percentage threshold: a run
//! regresses when `median > baseline_median · (1 + threshold/100)` and
//! improves when it is faster by the mirrored factor.

use crate::stats::{fmt_ns, Stats};
use serde::Value;
use std::collections::BTreeMap;
use std::io;
use std::path::{Path, PathBuf};

/// One finished benchmark: its full id plus measured statistics.
#[derive(Debug, Clone)]
pub struct BenchRecord {
    /// Full benchmark id (`group/bench`).
    pub id: String,
    /// Profile label the run was measured under (e.g. `smoke`, `full`).
    pub profile: String,
    /// Summary statistics (post IQR rejection).
    pub stats: Stats,
    /// Iterations batched per timed sample.
    pub iters_per_sample: u64,
    /// Raw per-iteration samples (ns), pre-rejection, in collection order.
    pub samples_ns: Vec<f64>,
}

// ---- per-bench artifacts -----------------------------------------------

/// The artifact path for a benchmark id: the segment before the first `/`
/// becomes the directory, the rest (with `/` → `_`) the file stem.
pub fn artifact_path(output_dir: &Path, id: &str) -> PathBuf {
    let (group, bench) = match id.split_once('/') {
        Some((g, b)) => (g, b.replace('/', "_")),
        None => ("ungrouped", id.to_string()),
    };
    output_dir
        .join(sanitize(group))
        .join(format!("{}.json", sanitize(&bench)))
}

fn sanitize(part: &str) -> String {
    part.chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || matches!(c, '-' | '_' | '.' | '=') {
                c
            } else {
                '_'
            }
        })
        .collect()
}

/// Writes the per-bench JSON artifact for `record`, creating directories
/// as needed. Returns the path written.
pub fn write_artifact(output_dir: &Path, record: &BenchRecord) -> io::Result<PathBuf> {
    let path = artifact_path(output_dir, &record.id);
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent)?;
    }
    let mut fields = record_fields(record);
    fields.push((
        "samples_ns".to_string(),
        Value::Array(record.samples_ns.iter().map(|&s| Value::F64(s)).collect()),
    ));
    let json = serde_json::to_string_pretty(&Value::Object(fields))
        .map_err(|e| io::Error::other(e.to_string()))?;
    std::fs::write(&path, json + "\n")?;
    Ok(path)
}

fn record_fields(record: &BenchRecord) -> Vec<(String, Value)> {
    let s = &record.stats;
    vec![
        ("id".to_string(), Value::Str(record.id.clone())),
        ("profile".to_string(), Value::Str(record.profile.clone())),
        ("mean_ns".to_string(), Value::F64(s.mean_ns)),
        ("median_ns".to_string(), Value::F64(s.median_ns)),
        ("std_dev_ns".to_string(), Value::F64(s.std_dev_ns)),
        ("p95_ns".to_string(), Value::F64(s.p95_ns)),
        ("min_ns".to_string(), Value::F64(s.min_ns)),
        ("max_ns".to_string(), Value::F64(s.max_ns)),
        ("samples_kept".to_string(), Value::U64(s.kept as u64)),
        (
            "outliers_rejected".to_string(),
            Value::U64(s.rejected as u64),
        ),
        (
            "iters_per_sample".to_string(),
            Value::U64(record.iters_per_sample),
        ),
    ]
}

// ---- baselines ---------------------------------------------------------

/// One benchmark's recorded statistics inside a [`Baseline`].
#[derive(Debug, Clone, PartialEq)]
pub struct BaselineEntry {
    /// Profile label the entry was measured under.
    pub profile: String,
    /// Mean per-iteration time (ns).
    pub mean_ns: f64,
    /// Median per-iteration time (ns) — the comparison statistic.
    pub median_ns: f64,
    /// Sample standard deviation (ns).
    pub std_dev_ns: f64,
    /// 95th percentile (ns).
    pub p95_ns: f64,
    /// Samples kept after outlier rejection.
    pub samples_kept: u64,
    /// Samples rejected as outliers.
    pub outliers_rejected: u64,
    /// Iterations batched per timed sample.
    pub iters_per_sample: u64,
}

/// A named collection of recorded benchmark statistics, keyed by full id.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Baseline {
    /// Id → recorded statistics, sorted for stable serialization.
    pub entries: BTreeMap<String, BaselineEntry>,
}

impl Baseline {
    /// Reads a baseline file. Returns the parse/io error message on failure.
    pub fn load(path: &Path) -> Result<Baseline, String> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read baseline {}: {e}", path.display()))?;
        let value: Value = serde_json::from_str(&text)
            .map_err(|e| format!("cannot parse baseline {}: {e}", path.display()))?;
        let obj = value
            .as_object()
            .ok_or_else(|| format!("baseline {} is not a JSON object", path.display()))?;
        let entries_value = obj
            .iter()
            .find(|(k, _)| k == "entries")
            .map(|(_, v)| v)
            .ok_or_else(|| format!("baseline {} has no `entries` key", path.display()))?;
        let entries_obj = entries_value
            .as_object()
            .ok_or_else(|| "`entries` is not an object".to_string())?;
        let mut entries = BTreeMap::new();
        for (id, entry) in entries_obj {
            entries.insert(id.clone(), parse_entry(id, entry)?);
        }
        Ok(Baseline { entries })
    }

    /// Inserts (or overwrites) one entry per record.
    pub fn merge_records(&mut self, records: &[BenchRecord]) {
        for r in records {
            self.entries.insert(
                r.id.clone(),
                BaselineEntry {
                    profile: r.profile.clone(),
                    mean_ns: r.stats.mean_ns,
                    median_ns: r.stats.median_ns,
                    std_dev_ns: r.stats.std_dev_ns,
                    p95_ns: r.stats.p95_ns,
                    samples_kept: r.stats.kept as u64,
                    outliers_rejected: r.stats.rejected as u64,
                    iters_per_sample: r.iters_per_sample,
                },
            );
        }
    }

    /// Writes the baseline as pretty JSON, creating parent directories.
    pub fn save(&self, path: &Path) -> io::Result<()> {
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        let entries = Value::Object(
            self.entries
                .iter()
                .map(|(id, e)| (id.clone(), entry_to_value(e)))
                .collect(),
        );
        let root = Value::Object(vec![
            ("format_version".to_string(), Value::U64(1)),
            ("entries".to_string(), entries),
        ]);
        let json =
            serde_json::to_string_pretty(&root).map_err(|e| io::Error::other(e.to_string()))?;
        std::fs::write(path, json + "\n")
    }
}

fn entry_to_value(e: &BaselineEntry) -> Value {
    Value::Object(vec![
        ("profile".to_string(), Value::Str(e.profile.clone())),
        ("mean_ns".to_string(), Value::F64(e.mean_ns)),
        ("median_ns".to_string(), Value::F64(e.median_ns)),
        ("std_dev_ns".to_string(), Value::F64(e.std_dev_ns)),
        ("p95_ns".to_string(), Value::F64(e.p95_ns)),
        ("samples_kept".to_string(), Value::U64(e.samples_kept)),
        (
            "outliers_rejected".to_string(),
            Value::U64(e.outliers_rejected),
        ),
        (
            "iters_per_sample".to_string(),
            Value::U64(e.iters_per_sample),
        ),
    ])
}

fn parse_entry(id: &str, value: &Value) -> Result<BaselineEntry, String> {
    let obj = value
        .as_object()
        .ok_or_else(|| format!("entry `{id}` is not an object"))?;
    let num = |key: &str| -> Result<f64, String> {
        let v = obj
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
            .ok_or_else(|| format!("entry `{id}` is missing `{key}`"))?;
        match v {
            Value::F64(x) => Ok(*x),
            Value::U64(u) => Ok(*u as f64),
            Value::I64(i) => Ok(*i as f64),
            other => Err(format!("entry `{id}`.`{key}` is {}", other.kind())),
        }
    };
    let profile = obj
        .iter()
        .find(|(k, _)| k == "profile")
        .and_then(|(_, v)| v.as_str())
        .unwrap_or("unknown")
        .to_string();
    Ok(BaselineEntry {
        profile,
        mean_ns: num("mean_ns")?,
        median_ns: num("median_ns")?,
        std_dev_ns: num("std_dev_ns")?,
        p95_ns: num("p95_ns")?,
        samples_kept: num("samples_kept")? as u64,
        outliers_rejected: num("outliers_rejected")? as u64,
        iters_per_sample: num("iters_per_sample")? as u64,
    })
}

// ---- comparison --------------------------------------------------------

/// Outcome of comparing one benchmark against its baseline entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// Slower than baseline by more than the threshold.
    Regressed,
    /// Faster than baseline by more than the threshold.
    Improved,
    /// Within the threshold either way.
    Within,
    /// Not present in the baseline.
    New,
}

/// Classifies `current_ns` against `baseline_ns` with a percentage
/// threshold: regression above `1 + pct/100`×, improvement below its
/// reciprocal.
pub fn verdict(current_ns: f64, baseline_ns: f64, threshold_pct: f64) -> Verdict {
    let factor = 1.0 + threshold_pct / 100.0;
    if current_ns > baseline_ns * factor {
        Verdict::Regressed
    } else if current_ns < baseline_ns / factor {
        Verdict::Improved
    } else {
        Verdict::Within
    }
}

/// One row of a baseline comparison.
#[derive(Debug, Clone)]
pub struct CompareRow {
    /// Benchmark id.
    pub id: String,
    /// This run's median (ns).
    pub current_ns: f64,
    /// The baseline median (ns), when the id was recorded.
    pub baseline_ns: Option<f64>,
    /// Classification against the threshold.
    pub verdict: Verdict,
}

/// Baseline ids with no record in this run, optionally restricted to
/// entries recorded under `profile`. A benchmark that silently vanishes
/// is worse than a regression, so gates must check this alongside
/// [`compare`]; the profile restriction keeps a smoke run from flagging
/// full-profile entries that were never supposed to run.
pub fn missing_ids(
    records: &[BenchRecord],
    baseline: &Baseline,
    profile: Option<&str>,
) -> Vec<String> {
    let have: std::collections::BTreeSet<&str> = records.iter().map(|r| r.id.as_str()).collect();
    baseline
        .entries
        .iter()
        .filter(|(id, entry)| {
            profile.is_none_or(|p| entry.profile == p) && !have.contains(id.as_str())
        })
        .map(|(id, _)| id.clone())
        .collect()
}

/// Compares every record against `baseline`, in record order.
pub fn compare(
    records: &[BenchRecord],
    baseline: &Baseline,
    threshold_pct: f64,
) -> Vec<CompareRow> {
    records
        .iter()
        .map(|r| match baseline.entries.get(&r.id) {
            Some(entry) => CompareRow {
                id: r.id.clone(),
                current_ns: r.stats.median_ns,
                baseline_ns: Some(entry.median_ns),
                verdict: verdict(r.stats.median_ns, entry.median_ns, threshold_pct),
            },
            None => CompareRow {
                id: r.id.clone(),
                current_ns: r.stats.median_ns,
                baseline_ns: None,
                verdict: Verdict::New,
            },
        })
        .collect()
}

/// Prints the comparison table and returns the number of regressions.
pub fn print_comparison(rows: &[CompareRow], threshold_pct: f64) -> usize {
    let mut regressions = 0;
    println!("\nbaseline comparison (threshold {threshold_pct}%):");
    for row in rows {
        let (label, detail) = match (row.verdict, row.baseline_ns) {
            (Verdict::New, _) | (_, None) => ("NEW      ", "not in baseline".to_string()),
            (v, Some(base)) => {
                let ratio = row.current_ns / base;
                if v == Verdict::Regressed {
                    regressions += 1;
                }
                let label = match v {
                    Verdict::Regressed => "REGRESSED",
                    Verdict::Improved => "improved ",
                    _ => "ok       ",
                };
                (
                    label,
                    format!(
                        "{} vs {} ({:+.1}%)",
                        fmt_ns(row.current_ns),
                        fmt_ns(base),
                        (ratio - 1.0) * 100.0
                    ),
                )
            }
        };
        println!("  {label} {:<55} {detail}", row.id);
    }
    let new = rows.iter().filter(|r| r.verdict == Verdict::New).count();
    println!(
        "  {} compared, {regressions} regressed, {new} new",
        rows.len() - new
    );
    regressions
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(id: &str, median: f64) -> BenchRecord {
        BenchRecord {
            id: id.to_string(),
            profile: "test".to_string(),
            stats: Stats {
                kept: 5,
                rejected: 0,
                mean_ns: median,
                median_ns: median,
                std_dev_ns: 1.0,
                p95_ns: median * 1.1,
                min_ns: median * 0.9,
                max_ns: median * 1.2,
            },
            iters_per_sample: 3,
            samples_ns: vec![median; 5],
        }
    }

    #[test]
    fn verdict_thresholds_are_symmetric_ratios() {
        // 15% threshold: regression above 1.15x, improvement below 1/1.15.
        assert_eq!(verdict(116.0, 100.0, 15.0), Verdict::Regressed);
        assert_eq!(verdict(114.9, 100.0, 15.0), Verdict::Within);
        assert_eq!(verdict(100.0, 100.0, 15.0), Verdict::Within);
        assert_eq!(verdict(87.0, 100.0, 15.0), Verdict::Within);
        assert_eq!(verdict(86.0, 100.0, 15.0), Verdict::Improved);
        // Generous CI threshold: 3x is 200%.
        assert_eq!(verdict(299.0, 100.0, 200.0), Verdict::Within);
        assert_eq!(verdict(301.0, 100.0, 200.0), Verdict::Regressed);
    }

    #[test]
    fn compare_flags_missing_ids_as_new() {
        let mut baseline = Baseline::default();
        baseline.merge_records(&[record("suite/a", 100.0)]);
        let rows = compare(
            &[record("suite/a", 90.0), record("suite/b", 50.0)],
            &baseline,
            15.0,
        );
        assert_eq!(rows[0].verdict, Verdict::Within);
        assert_eq!(rows[1].verdict, Verdict::New);
        assert_eq!(rows[1].baseline_ns, None);
    }

    #[test]
    fn missing_ids_respects_profile_scope() {
        let mut baseline = Baseline::default();
        baseline.merge_records(&[record("suite/a", 100.0), record("suite/b", 200.0)]);
        baseline.entries.get_mut("suite/b").unwrap().profile = "other".to_string();
        let current = [record("suite/a", 100.0)];
        // Scoped to this run's profile: suite/b belongs to another
        // profile and was never supposed to run.
        assert!(missing_ids(&current, &baseline, Some("test")).is_empty());
        // Unscoped: suite/b counts as missing.
        assert_eq!(
            missing_ids(&current, &baseline, None),
            vec!["suite/b".to_string()]
        );
        // A vanished same-profile benchmark is reported.
        assert_eq!(
            missing_ids(&[], &baseline, Some("test")),
            vec!["suite/a".to_string()]
        );
    }

    #[test]
    fn baseline_round_trips_through_json() {
        let mut baseline = Baseline::default();
        baseline.merge_records(&[record("suite/a", 123.5), record("suite/b/c", 42.0)]);
        let dir = std::env::temp_dir().join("criterion-baseline-test");
        let path = dir.join("roundtrip.json");
        baseline.save(&path).unwrap();
        let loaded = Baseline::load(&path).unwrap();
        assert_eq!(loaded, baseline);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn merge_overwrites_existing_entries_and_keeps_others() {
        let mut baseline = Baseline::default();
        baseline.merge_records(&[record("suite/a", 100.0), record("suite/b", 200.0)]);
        baseline.merge_records(&[record("suite/a", 50.0)]);
        assert_eq!(baseline.entries["suite/a"].median_ns, 50.0);
        assert_eq!(baseline.entries["suite/b"].median_ns, 200.0);
    }

    #[test]
    fn artifact_path_splits_group_and_sanitizes() {
        let dir = Path::new("/tmp/out");
        assert_eq!(
            artifact_path(dir, "construction/n1153_h10/FairKd"),
            dir.join("construction").join("n1153_h10_FairKd.json")
        );
        assert_eq!(
            artifact_path(dir, "loose"),
            dir.join("ungrouped").join("loose.json")
        );
        assert_eq!(
            artifact_path(dir, "g/we ird:name"),
            dir.join("g").join("we_ird_name.json")
        );
    }

    #[test]
    fn artifact_file_is_valid_json_with_expected_fields() {
        let dir = std::env::temp_dir().join("criterion-artifact-test");
        let rec = record("grp/bench", 77.0);
        let path = write_artifact(&dir, &rec).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        let value: Value = serde_json::from_str(&text).unwrap();
        let obj = value.as_object().unwrap();
        for key in [
            "id",
            "median_ns",
            "p95_ns",
            "samples_ns",
            "iters_per_sample",
        ] {
            assert!(obj.iter().any(|(k, _)| k == key), "missing {key}");
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}
