//! Offline vendored stand-in for `criterion` — now a real statistical
//! harness rather than a stopwatch.
//!
//! Implements the benchmark-facing API the workspace's benches use
//! ([`Criterion::benchmark_group`], [`BenchmarkGroup::bench_function`] /
//! [`BenchmarkGroup::bench_with_input`], [`Bencher::iter`],
//! [`criterion_group!`], [`criterion_main!`]) on top of:
//!
//! * a configurable **warm-up** phase that also estimates the routine's
//!   per-iteration cost;
//! * **adaptive iteration batching**: each benchmark targets a per-bench
//!   measurement-time budget, so microsecond routines batch thousands of
//!   iterations per sample while second-scale routines run one;
//! * **statistics** (mean/median/std-dev/p95) with Tukey IQR outlier
//!   rejection ([`stats`]);
//! * **JSON artifacts** per benchmark under
//!   `target/criterion/<group>/<bench>.json` ([`report`]);
//! * **baseline save/compare** (`--save-baseline` / `--baseline`) with a
//!   percentage regression threshold and a nonzero exit code on
//!   regression.
//!
//! Command line (after `cargo bench -- …`):
//!
//! ```text
//! [FILTER]                    only run benchmarks whose id contains FILTER
//! --sample-size N             timed samples per benchmark (default 20)
//! --warm-up-ms N              warm-up duration (default 300)
//! --measurement-ms N          per-bench measurement budget (default 1000)
//! --save-baseline NAME        record results under NAME after the run
//! --baseline NAME             compare against NAME; exit 1 on regression
//! --regression-threshold PCT  regression threshold in percent (default 15)
//! --output-dir PATH           artifact root (default target/criterion)
//! --profile NAME              label recorded into artifacts/baselines
//! ```
//!
//! A baseline NAME containing a path separator or ending in `.json` is
//! used as a file path verbatim; otherwise it lives at
//! `<output-dir>/baseline-<NAME>.json`. Saving merges into an existing
//! file so filtered runs update only the benchmarks they ran.
//!
//! Still intentionally absent vs the real crate: HTML reports, bootstrap
//! confidence intervals, and plotting.

#![forbid(unsafe_code)]

pub mod report;
pub mod stats;

use report::BenchRecord;
use stats::fmt_ns;
use std::fmt::Display;
use std::path::{Path, PathBuf};
use std::sync::Mutex;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

// ---- configuration -----------------------------------------------------

/// Resolved harness configuration (CLI flags + builder overrides).
#[derive(Debug, Clone)]
struct BenchConfig {
    sample_size: usize,
    warm_up: Duration,
    measurement_time: Duration,
    filter: Option<String>,
    output_dir: PathBuf,
    profile: String,
    baseline: Option<String>,
    save_baseline: Option<String>,
    threshold_pct: f64,
}

impl Default for BenchConfig {
    fn default() -> Self {
        BenchConfig {
            sample_size: 20,
            warm_up: Duration::from_millis(300),
            measurement_time: Duration::from_millis(1000),
            filter: None,
            output_dir: default_output_dir(),
            profile: "bench".to_string(),
            baseline: None,
            save_baseline: None,
            threshold_pct: 15.0,
        }
    }
}

impl BenchConfig {
    fn from_args<I: Iterator<Item = String>>(args: I) -> BenchConfig {
        let mut cfg = BenchConfig::default();
        let mut args = args.peekable();
        while let Some(arg) = args.next() {
            let take_value = |name: &str, args: &mut std::iter::Peekable<I>| {
                args.next()
                    .unwrap_or_else(|| panic!("{name} requires a value"))
            };
            match arg.as_str() {
                "--sample-size" => {
                    cfg.sample_size = take_value("--sample-size", &mut args)
                        .parse()
                        .expect("--sample-size takes an integer");
                    assert!(cfg.sample_size >= 2, "sample size must be at least 2");
                }
                "--warm-up-ms" => {
                    cfg.warm_up = Duration::from_millis(
                        take_value("--warm-up-ms", &mut args)
                            .parse()
                            .expect("--warm-up-ms takes milliseconds"),
                    );
                }
                "--measurement-ms" => {
                    cfg.measurement_time = Duration::from_millis(
                        take_value("--measurement-ms", &mut args)
                            .parse()
                            .expect("--measurement-ms takes milliseconds"),
                    );
                }
                "--save-baseline" => {
                    cfg.save_baseline = Some(take_value("--save-baseline", &mut args));
                }
                "--baseline" => {
                    cfg.baseline = Some(take_value("--baseline", &mut args));
                }
                "--regression-threshold" => {
                    cfg.threshold_pct = take_value("--regression-threshold", &mut args)
                        .parse()
                        .expect("--regression-threshold takes a percentage");
                }
                "--output-dir" => {
                    cfg.output_dir = PathBuf::from(take_value("--output-dir", &mut args));
                }
                "--profile" => {
                    cfg.profile = take_value("--profile", &mut args);
                }
                // Cargo passes `--bench` to harness=false bench binaries.
                "--bench" => {}
                other if other.starts_with("--") => {
                    eprintln!("criterion: ignoring unknown flag `{other}`");
                    // Swallow a value that clearly belongs to the flag.
                    if args.peek().is_some_and(|v| !v.starts_with("--")) {
                        args.next();
                    }
                }
                positional => {
                    cfg.filter = Some(positional.to_string());
                }
            }
        }
        cfg
    }

    /// Resolves a baseline name to its file path.
    fn baseline_path(&self, name: &str) -> PathBuf {
        if name.ends_with(".json") || name.contains(std::path::MAIN_SEPARATOR) {
            PathBuf::from(name)
        } else {
            self.output_dir.join(format!("baseline-{name}.json"))
        }
    }
}

/// The artifact root for this process: `<target dir>/criterion`, located
/// by walking up from the running executable (bench binaries live under
/// `target/<profile>/deps/`). Falls back to `./target/criterion`.
pub fn default_output_dir() -> PathBuf {
    target_dir().join("criterion")
}

/// The Cargo target directory containing the running executable, or
/// `./target` when it cannot be located.
pub fn target_dir() -> PathBuf {
    if let Ok(exe) = std::env::current_exe() {
        for dir in exe.ancestors() {
            if dir.file_name().is_some_and(|n| n == "target") {
                return dir.to_path_buf();
            }
        }
    }
    PathBuf::from("target")
}

// ---- registry ----------------------------------------------------------

static REGISTRY: Mutex<Vec<BenchRecord>> = Mutex::new(Vec::new());

fn push_record(record: BenchRecord) {
    REGISTRY.lock().expect("registry poisoned").push(record);
}

/// Drains every benchmark result recorded in this process so far, in run
/// order. Used by [`criterion_main!`]'s finalizer and by external runners
/// (the `fsi-bench` runner binary) that post-process results themselves.
pub fn take_records() -> Vec<BenchRecord> {
    std::mem::take(&mut *REGISTRY.lock().expect("registry poisoned"))
}

// ---- driver ------------------------------------------------------------

/// Top-level benchmark driver; one per [`criterion_group!`].
#[derive(Default)]
pub struct Criterion {
    config: BenchConfig,
}

impl Criterion {
    /// Applies the process's command-line flags on top of the defaults
    /// (called by [`criterion_group!`]).
    #[must_use]
    pub fn configure_from_args(mut self) -> Self {
        self.config = BenchConfig::from_args(std::env::args().skip(1));
        self
    }

    /// Sets the number of timed samples per benchmark.
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.config.sample_size = n;
        self
    }

    /// Sets the warm-up duration per benchmark.
    #[must_use]
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.config.warm_up = d;
        self
    }

    /// Sets the per-benchmark measurement-time budget.
    #[must_use]
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.config.measurement_time = d;
        self
    }

    /// Sets the artifact root directory.
    #[must_use]
    pub fn output_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.config.output_dir = dir.into();
        self
    }

    /// Sets the profile label recorded in artifacts and baselines.
    #[must_use]
    pub fn profile(mut self, label: impl Into<String>) -> Self {
        self.config.profile = label.into();
        self
    }

    /// Restricts the run to benchmarks whose id contains `substring`.
    #[must_use]
    pub fn filter(mut self, substring: impl Into<String>) -> Self {
        self.config.filter = Some(substring.into());
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let config = self.config.clone();
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            config,
        }
    }

    /// Benches a single function outside any group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(&id.into().0, &self.config, f);
        self
    }
}

/// A named benchmark identifier.
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId(format!("{}/{}", name.into(), parameter))
    }

    /// Just the parameter (the group provides the name).
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId(s.to_string())
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId(s)
    }
}

/// A group of related benchmarks sharing a name prefix and measurement
/// settings.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    config: BenchConfig,
}

impl BenchmarkGroup<'_> {
    /// Overrides the number of timed samples for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.config.sample_size = n;
        self
    }

    /// Overrides the warm-up duration for this group.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.config.warm_up = d;
        self
    }

    /// Overrides the measurement-time budget for this group.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.config.measurement_time = d;
        self
    }

    /// Benches `f` under `id`.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into().0);
        run_benchmark(&full, &self.config, f);
        self
    }

    /// Benches `f` under `id`, passing `input` through.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    /// Ends the group (a no-op here; exists for API parity).
    pub fn finish(self) {}
}

/// Passed to the benchmark closure; runs the measurement loop.
pub struct Bencher {
    warm_up: Duration,
    measurement_time: Duration,
    sample_size: usize,
    samples_ns: Vec<f64>,
    iters_per_sample: u64,
}

impl Bencher {
    /// Times `routine`: warms up for the configured duration (estimating
    /// per-iteration cost), picks an iteration batch size so the timed
    /// samples fill the measurement budget, then records `sample_size`
    /// per-iteration timings.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up with doubling batches; the elapsed total estimates the
        // per-iteration cost without per-call `Instant` overhead.
        let warm_start = Instant::now();
        let mut batch = 1u64;
        let mut warm_iters = 0u64;
        loop {
            for _ in 0..batch {
                black_box(routine());
            }
            warm_iters += batch;
            if warm_start.elapsed() >= self.warm_up {
                break;
            }
            batch = batch.saturating_mul(2).min(1 << 20);
        }
        let est_ns = (warm_start.elapsed().as_nanos() as f64 / warm_iters as f64).max(0.1);
        let budget_ns = self.measurement_time.as_nanos() as f64 / self.sample_size as f64;
        let iters = ((budget_ns / est_ns).round() as u64).clamp(1, 1 << 30);
        self.iters_per_sample = iters;
        self.samples_ns.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            self.samples_ns
                .push(start.elapsed().as_nanos() as f64 / iters as f64);
        }
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(id: &str, config: &BenchConfig, mut f: F) {
    if let Some(filter) = &config.filter {
        if !id.contains(filter.as_str()) {
            return;
        }
    }
    let mut bencher = Bencher {
        warm_up: config.warm_up,
        measurement_time: config.measurement_time,
        sample_size: config.sample_size,
        samples_ns: Vec::new(),
        iters_per_sample: 0,
    };
    f(&mut bencher);
    let Some(stats) = stats::compute(&bencher.samples_ns) else {
        println!("{id:<55} (no samples — closure never called iter)");
        return;
    };
    println!(
        "{id:<55} median {:>9}  mean {:>9} ± {:>9}  p95 {:>9}  ({}/{} samples, {} iters/sample)",
        fmt_ns(stats.median_ns),
        fmt_ns(stats.mean_ns),
        fmt_ns(stats.std_dev_ns),
        fmt_ns(stats.p95_ns),
        stats.kept,
        stats.kept + stats.rejected,
        bencher.iters_per_sample,
    );
    let record = BenchRecord {
        id: id.to_string(),
        profile: config.profile.clone(),
        stats,
        iters_per_sample: bencher.iters_per_sample,
        samples_ns: bencher.samples_ns.clone(),
    };
    if let Err(err) = report::write_artifact(&config.output_dir, &record) {
        eprintln!("criterion: cannot write artifact for `{id}`: {err}");
    }
    push_record(record);
}

// ---- finalization ------------------------------------------------------

/// Handles `--save-baseline` / `--baseline` for a standalone bench binary
/// after all groups ran (called by [`criterion_main!`]). Returns the
/// process exit code: `1` when any benchmark regressed past the
/// threshold, `2` on a baseline usage/parse error, `0` otherwise.
pub fn finalize_from_args() -> i32 {
    let config = BenchConfig::from_args(std::env::args().skip(1));
    let records = take_records();
    finalize(&config, &records)
}

fn finalize(config: &BenchConfig, records: &[BenchRecord]) -> i32 {
    match (&config.save_baseline, &config.baseline) {
        (Some(_), Some(_)) => {
            eprintln!("criterion: --save-baseline and --baseline are mutually exclusive");
            2
        }
        (Some(name), None) => {
            let path = config.baseline_path(name);
            save_baseline_at(&path, records)
        }
        (None, Some(name)) => {
            let path = config.baseline_path(name);
            // With a filter active, benchmarks were skipped on purpose —
            // only an unfiltered run can assert completeness.
            let expected_profile = if config.filter.is_some() {
                None
            } else {
                Some(config.profile.as_str())
            };
            compare_against(&path, records, config.threshold_pct, expected_profile)
        }
        (None, None) => 0,
    }
}

/// Merges `records` into the baseline file at `path` (creating it when
/// absent) and reports the result. Returns a process exit code.
pub fn save_baseline_at(path: &Path, records: &[BenchRecord]) -> i32 {
    let mut baseline = if path.exists() {
        match report::Baseline::load(path) {
            Ok(b) => b,
            Err(err) => {
                eprintln!("criterion: {err}");
                return 2;
            }
        }
    } else {
        report::Baseline::default()
    };
    baseline.merge_records(records);
    match baseline.save(path) {
        Ok(()) => {
            println!(
                "saved baseline ({} entries, {} updated) to {}",
                baseline.entries.len(),
                records.len(),
                path.display()
            );
            0
        }
        Err(err) => {
            eprintln!("criterion: cannot save baseline {}: {err}", path.display());
            2
        }
    }
}

/// Compares `records` against the baseline file at `path`, printing a
/// verdict table. When `expected_profile` is given, baseline entries
/// recorded under that profile must all be present in `records` — a
/// vanished benchmark fails the gate like a regression; pass `None` on
/// filtered runs, where absences are intentional. Returns a process
/// exit code (1 on any regression or missing benchmark).
pub fn compare_against(
    path: &Path,
    records: &[BenchRecord],
    threshold_pct: f64,
    expected_profile: Option<&str>,
) -> i32 {
    let baseline = match report::Baseline::load(path) {
        Ok(b) => b,
        Err(err) => {
            eprintln!("criterion: {err}");
            return 2;
        }
    };
    let rows = report::compare(records, &baseline, threshold_pct);
    let regressions = report::print_comparison(&rows, threshold_pct);
    // `None` (filtered run) skips the completeness check entirely —
    // benchmarks were excluded on purpose.
    let missing = match expected_profile {
        Some(profile) => report::missing_ids(records, &baseline, Some(profile)),
        None => Vec::new(),
    };
    for id in &missing {
        println!("  MISSING   {id:<55} in baseline but did not run");
    }
    if regressions > 0 || !missing.is_empty() {
        1
    } else {
        0
    }
}

/// Declares a bench group function callable from [`criterion_main!`].
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench binary's `main`: runs each group in order, then
/// applies baseline save/compare from the command line, exiting nonzero
/// on regression.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
            std::process::exit($crate::finalize_from_args());
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> BenchConfig {
        BenchConfig::from_args(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn args_parse_into_config() {
        let cfg = parse(&[
            "--sample-size",
            "7",
            "--warm-up-ms",
            "10",
            "--measurement-ms",
            "250",
            "--regression-threshold",
            "200",
            "--profile",
            "smoke",
            "split_search",
        ]);
        assert_eq!(cfg.sample_size, 7);
        assert_eq!(cfg.warm_up, Duration::from_millis(10));
        assert_eq!(cfg.measurement_time, Duration::from_millis(250));
        assert_eq!(cfg.threshold_pct, 200.0);
        assert_eq!(cfg.profile, "smoke");
        assert_eq!(cfg.filter.as_deref(), Some("split_search"));
    }

    #[test]
    fn cargo_bench_flag_is_ignored() {
        let cfg = parse(&["--bench"]);
        assert_eq!(cfg.filter, None);
        assert_eq!(cfg.sample_size, 20);
    }

    #[test]
    fn baseline_names_resolve_to_output_dir_paths() {
        let cfg = parse(&["--output-dir", "/tmp/crit"]);
        assert_eq!(
            cfg.baseline_path("main"),
            PathBuf::from("/tmp/crit/baseline-main.json")
        );
        assert_eq!(
            cfg.baseline_path("BENCH_baseline.json"),
            PathBuf::from("BENCH_baseline.json")
        );
        assert_eq!(cfg.baseline_path("a/b"), PathBuf::from("a/b"));
    }

    #[test]
    fn bencher_iter_collects_requested_samples() {
        let mut bencher = Bencher {
            warm_up: Duration::from_millis(1),
            measurement_time: Duration::from_millis(10),
            sample_size: 5,
            samples_ns: Vec::new(),
            iters_per_sample: 0,
        };
        let mut x = 0u64;
        bencher.iter(|| {
            x = x.wrapping_add(1);
            black_box(x)
        });
        assert_eq!(bencher.samples_ns.len(), 5);
        assert!(bencher.iters_per_sample >= 1);
        assert!(bencher.samples_ns.iter().all(|&s| s >= 0.0));
    }
}
