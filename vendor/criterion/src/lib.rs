//! Offline vendored stand-in for `criterion`.
//!
//! Implements the benchmark-facing API the workspace's benches use
//! ([`Criterion::benchmark_group`], [`BenchmarkGroup::bench_function`] /
//! [`BenchmarkGroup::bench_with_input`], [`Bencher::iter`],
//! [`criterion_group!`], [`criterion_main!`]) with a simple wall-clock
//! measurement loop: a short warm-up, then `sample_size` timed samples,
//! reporting min/median/mean per benchmark on stdout.
//!
//! No statistical analysis, HTML reports or `target/criterion` artifacts —
//! numbers land on stdout and that's it. Good enough to compare the SAT
//! split scan against the naive rescan, or Fair vs Iterative construction.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver; one per `criterion_group!`.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = self.sample_size;
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            sample_size,
        }
    }

    /// Benches a single function outside any group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let sample_size = self.sample_size;
        run_benchmark(&id.into().0, sample_size, f);
        self
    }
}

/// A named benchmark identifier.
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId(format!("{}/{}", name.into(), parameter))
    }

    /// Just the parameter (the group provides the name).
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId(s.to_string())
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId(s)
    }
}

/// A group of related benchmarks sharing a name prefix and sample size.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Benches `f` under `id`.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into().0);
        run_benchmark(&full, self.sample_size, f);
        self
    }

    /// Benches `f` under `id`, passing `input` through.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    /// Ends the group (a no-op here; exists for API parity).
    pub fn finish(self) {}
}

/// Passed to the benchmark closure; runs the measurement loop.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Times `routine`, collecting one duration per sample.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: until ~50 ms or 3 iterations, whichever first.
        let warmup_start = Instant::now();
        for _ in 0..3 {
            black_box(routine());
            if warmup_start.elapsed() > Duration::from_millis(50) {
                break;
            }
        }
        self.samples.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
        }
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(name: &str, sample_size: usize, mut f: F) {
    let mut bencher = Bencher {
        samples: Vec::new(),
        sample_size,
    };
    f(&mut bencher);
    if bencher.samples.is_empty() {
        println!("{name:<50} (no samples — closure never called iter)");
        return;
    }
    let mut sorted = bencher.samples.clone();
    sorted.sort();
    let min = sorted[0];
    let median = sorted[sorted.len() / 2];
    let mean = sorted.iter().sum::<Duration>() / sorted.len() as u32;
    println!(
        "{name:<50} min {:>12?}  median {:>12?}  mean {:>12?}  ({} samples)",
        min,
        median,
        mean,
        sorted.len()
    );
}

/// Declares a bench group function callable from [`criterion_main!`].
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench binary's `main`, running each group in order.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
