//! Offline vendored stand-in for `serde_json`.
//!
//! Renders the vendored `serde::Value` tree as real JSON and parses JSON
//! back into it, which is all the workspace needs for persistence
//! ([`to_string`], [`to_string_pretty`], [`from_str`]).
//!
//! Numbers: integers are emitted verbatim; floats use Rust's shortest
//! round-trip formatting with a trailing `.0` forced onto integral floats
//! so the value re-parses as a float. Non-finite floats are emitted as
//! `null`, matching real serde_json.

#![forbid(unsafe_code)]

use serde::{Deserialize, Serialize, Value};
use std::fmt;

/// Serialization/deserialization failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "serde_json error: {}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(err: serde::Error) -> Self {
        Error(err.to_string())
    }
}

/// Serializes `value` as a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serializes `value` as 2-space-indented JSON.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Parses a JSON document into any `Deserialize` type.
pub fn from_str<T: Deserialize>(input: &str) -> Result<T, Error> {
    let value = parse_value(input)?;
    Ok(T::from_value(&value)?)
}

// ---- writer ------------------------------------------------------------

fn write_value(out: &mut String, value: &Value, indent: Option<usize>, depth: usize) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::I64(i) => out.push_str(&i.to_string()),
        Value::U64(u) => out.push_str(&u.to_string()),
        Value::F64(x) => write_float(out, *x),
        Value::Str(s) => write_string(out, s),
        Value::Array(items) => write_seq(
            out,
            items.iter(),
            items.len(),
            '[',
            ']',
            indent,
            depth,
            |out, item, indent, depth| {
                write_value(out, item, indent, depth);
            },
        ),
        Value::Object(entries) => write_seq(
            out,
            entries.iter(),
            entries.len(),
            '{',
            '}',
            indent,
            depth,
            |out, (key, val), indent, depth| {
                write_string(out, key);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, val, indent, depth);
            },
        ),
    }
}

#[allow(clippy::too_many_arguments)]
fn write_seq<I: Iterator>(
    out: &mut String,
    items: I,
    len: usize,
    open: char,
    close: char,
    indent: Option<usize>,
    depth: usize,
    mut write_item: impl FnMut(&mut String, I::Item, Option<usize>, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for (i, item) in items.enumerate() {
        if i > 0 {
            out.push(',');
        }
        if let Some(width) = indent {
            out.push('\n');
            out.extend(std::iter::repeat_n(' ', width * (depth + 1)));
        }
        write_item(out, item, indent, depth + 1);
    }
    if let Some(width) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', width * depth));
    }
    out.push(close);
}

fn write_float(out: &mut String, x: f64) {
    if !x.is_finite() {
        out.push_str("null");
        return;
    }
    let repr = format!("{x}");
    out.push_str(&repr);
    // Force a float marker so round-tripping preserves float-ness.
    if !repr.contains(['.', 'e', 'E']) {
        out.push_str(".0");
    }
}

/// Escapes exactly like real `serde_json`: the two mandatory escapes
/// (`"` and `\`), shorthand escapes for the five named control
/// characters, `\u00XX` for the remaining C0 controls, and everything
/// else — including DEL and all non-ASCII — emitted verbatim as UTF-8.
fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\u{0008}' => out.push_str("\\b"),
            '\u{000C}' => out.push_str("\\f"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = fmt::Write::write_fmt(out, format_args!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---- parser ------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse_value(input: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(value)
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> Error {
        Error(format!("{msg} at byte {}", self.pos))
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        self.skip_ws();
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            None => Err(self.err("unexpected end of input")),
            Some(b'n') => {
                if self.eat_keyword("null") {
                    Ok(Value::Null)
                } else {
                    Err(self.err("invalid keyword"))
                }
            }
            Some(b't') => {
                if self.eat_keyword("true") {
                    Ok(Value::Bool(true))
                } else {
                    Err(self.err("invalid keyword"))
                }
            }
            Some(b'f') => {
                if self.eat_keyword("false") {
                    Ok(Value::Bool(false))
                } else {
                    Err(self.err("invalid keyword"))
                }
            }
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            Some(b) => Err(self.err(&format!("unexpected character `{}`", b as char))),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.value()?);
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            if self.peek() != Some(b'"') {
                return Err(self.err("expected object key"));
            }
            let key = self.string()?;
            self.expect(b':')?;
            entries.push((key, self.value()?));
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid UTF-8"))?,
            );
            match self.bytes.get(self.pos) {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = *self
                        .bytes
                        .get(self.pos)
                        .ok_or_else(|| self.err("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000C}'),
                        b'u' => {
                            let code = self.hex4()?;
                            // Surrogate pairs for astral-plane characters.
                            let c = if (0xD800..0xDC00).contains(&code) {
                                if !(self.bytes.get(self.pos) == Some(&b'\\')
                                    && self.bytes.get(self.pos + 1) == Some(&b'u'))
                                {
                                    return Err(self.err("unpaired surrogate"));
                                }
                                self.pos += 2;
                                let low = self.hex4()?;
                                let combined = 0x10000
                                    + ((code - 0xD800) << 10)
                                    + (low
                                        .checked_sub(0xDC00)
                                        .ok_or_else(|| self.err("invalid low surrogate"))?);
                                char::from_u32(combined)
                            } else {
                                char::from_u32(code)
                            };
                            out.push(c.ok_or_else(|| self.err("invalid unicode escape"))?);
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                }
                _ => return Err(self.err("unterminated string")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        let hex = self
            .bytes
            .get(self.pos..self.pos + 4)
            .ok_or_else(|| self.err("truncated \\u escape"))?;
        let s = std::str::from_utf8(hex).map_err(|_| self.err("invalid \\u escape"))?;
        let code = u32::from_str_radix(s, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos += 4;
        Ok(code)
    }

    fn number(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        let start = self.pos;
        if self.bytes.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if !is_float {
            if text.starts_with('-') {
                if let Ok(i) = text.parse::<i64>() {
                    return Ok(Value::I64(i));
                }
            } else if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::U64(u));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trips() {
        for json in [
            "null",
            "true",
            "false",
            "42",
            "-7",
            "3.25",
            "\"hi\\nthere\"",
        ] {
            let v = parse_value(json).unwrap();
            let mut out = String::new();
            write_value(&mut out, &v, None, 0);
            assert_eq!(out, json);
        }
    }

    #[test]
    fn integral_floats_stay_floats() {
        let v = Value::F64(2.0);
        let mut out = String::new();
        write_value(&mut out, &v, None, 0);
        assert_eq!(out, "2.0");
        assert_eq!(parse_value("2.0").unwrap(), Value::F64(2.0));
    }

    #[test]
    fn nested_structure_round_trips() {
        let json = r#"{"a":[1,2.5,{"b":null}],"c":"x","d":true}"#;
        let v = parse_value(json).unwrap();
        let mut out = String::new();
        write_value(&mut out, &v, None, 0);
        assert_eq!(out, json);
    }

    #[test]
    fn pretty_output_reparses() {
        let v = parse_value(r#"{"a":[1,2],"b":{"c":"x"}}"#).unwrap();
        let pretty = {
            let mut out = String::new();
            write_value(&mut out, &v, Some(2), 0);
            out
        };
        assert_eq!(parse_value(&pretty).unwrap(), v);
    }

    /// Serialize-then-parse of a `&str`, via the public API the wire
    /// protocol uses.
    fn string_round_trip(s: &str) -> String {
        let json = to_string(s).unwrap();
        from_str::<String>(&json).unwrap()
    }

    #[test]
    fn every_control_character_escapes_and_round_trips() {
        for code in 0u32..0x20 {
            let c = char::from_u32(code).unwrap();
            let s = format!("a{c}b");
            let json = to_string(&s).unwrap();
            // RFC 8259: raw control characters must never appear in a
            // JSON string.
            assert!(
                json.chars().all(|c| c as u32 >= 0x20),
                "raw control char in {json:?}"
            );
            assert_eq!(from_str::<String>(&json).unwrap(), s, "code {code:#x}");
        }
        // The five named shorthands, exactly as real serde_json emits them.
        assert_eq!(to_string("\u{8}\u{c}\n\r\t").unwrap(), r#""\b\f\n\r\t""#);
        // Remaining C0 controls use \u00XX.
        assert_eq!(to_string("\u{1}\u{1f}").unwrap(), "\"\\u0001\\u001f\"");
        // DEL (0x7f) is not a C0 control: emitted raw, like real serde_json.
        assert_eq!(to_string("\u{7f}").unwrap(), "\"\u{7f}\"");
    }

    #[test]
    fn quotes_and_backslashes_escape() {
        assert_eq!(to_string(r#"a"b\c"#).unwrap(), r#""a\"b\\c""#);
        assert_eq!(string_round_trip(r#"\\""#), r#"\\""#);
        // A backslash right before a quote must not eat the terminator.
        assert_eq!(string_round_trip("ends with \\"), "ends with \\");
    }

    #[test]
    fn non_ascii_round_trips_verbatim() {
        for s in [
            "café",
            "日本語のテキスト",
            "emoji \u{1F600}\u{1F680} pair",
            "mixed\n日本\t\"quote\" \u{1}",
            "\u{10FFFF}\u{FFFD}",
        ] {
            assert_eq!(string_round_trip(s), s);
            // Non-ASCII is emitted as raw UTF-8, not \u escapes.
            let json = to_string(s).unwrap();
            if s.is_ascii() {
                continue;
            }
            assert!(
                !json.contains("\\u") || s.contains('\u{1}'),
                "unexpected \\u escapes in {json:?}"
            );
        }
    }

    #[test]
    fn unicode_escape_parsing_covers_bmp_and_astral() {
        // BMP escape, lowercase and uppercase hex digits.
        assert_eq!(from_str::<String>("\"\\u00e9\"").unwrap(), "é");
        assert_eq!(from_str::<String>("\"\\u00E9\"").unwrap(), "é");
        // Astral plane via a surrogate pair.
        assert_eq!(
            from_str::<String>("\"\\ud83d\\ude00\"").unwrap(),
            "\u{1F600}"
        );
        // Escaped and raw spellings of the same text are equal.
        assert_eq!(
            from_str::<String>("\"caf\\u00e9\"").unwrap(),
            from_str::<String>("\"café\"").unwrap()
        );
    }

    #[test]
    fn malformed_escapes_are_rejected() {
        for bad in [
            r#""\u12""#,      // truncated
            r#""\uZZZZ""#,    // non-hex
            r#""\ud83d""#,    // lone high surrogate
            r#""\ud83d\n""#,  // high surrogate followed by non-\u escape
            r#""\ud83dA""#,   // high surrogate + invalid low surrogate
            r#""\ude00""#,    // lone low surrogate (invalid char::from_u32)
            r#""\x41""#,      // not a JSON escape
            "\"unterminated", // no closing quote
        ] {
            assert!(from_str::<String>(bad).is_err(), "{bad:?} must fail");
        }
    }

    #[test]
    fn escaped_keys_round_trip_in_objects() {
        let v = Value::Object(vec![(
            "line\nbreak \"quoted\" ключ".to_string(),
            Value::Bool(true),
        )]);
        let mut out = String::new();
        write_value(&mut out, &v, None, 0);
        assert_eq!(parse_value(&out).unwrap(), v);
    }

    #[test]
    fn extreme_f64_round_trips() {
        for x in [f64::MIN, f64::MAX, f64::EPSILON, 1e-300, -0.0] {
            let mut out = String::new();
            write_value(&mut out, &Value::F64(x), None, 0);
            match parse_value(&out).unwrap() {
                Value::F64(y) => assert_eq!(x.to_bits(), y.to_bits(), "{x} vs {y}"),
                other => panic!("expected float, got {other:?}"),
            }
        }
    }
}
