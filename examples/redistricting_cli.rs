//! A small CLI: fair re-districting of a CSV dataset.
//!
//! Reads a dataset in the `fsi-data` CSV layout (or generates the LA
//! preset when no path is given), builds a districting with the requested
//! method and height, prints the per-neighborhood calibration table, and
//! writes the partition to JSON so downstream tools can consume the
//! boundaries.
//!
//! ```sh
//! cargo run --release --example redistricting_cli -- [CSV_PATH] [METHOD] [HEIGHT]
//! # METHOD: median | fair | iterative | reweight | zip | quad  (default fair)
//! # HEIGHT: tree height (default 6)
//! ```

use fsi_data::synth::edgap::generate_los_angeles;
use fsi_data::SpatialDataset;
use fsi_geo::{Grid, Rect};
use fsi_pipeline::{run_method, Method, RunConfig, TaskSpec};
use std::io::BufReader;

fn parse_method(s: &str) -> Option<Method> {
    Some(match s {
        "median" => Method::MedianKd,
        "fair" => Method::FairKd,
        "iterative" => Method::IterativeFairKd,
        "reweight" => Method::GridReweight,
        "zip" => Method::ZipCode,
        "quad" => Method::FairQuad,
        _ => return None,
    })
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let dataset: SpatialDataset = match args.first().map(String::as_str) {
        Some(path) if !path.is_empty() && parse_method(path).is_none() => {
            let file = std::fs::File::open(path)?;
            let grid = Grid::new(Rect::unit(), 64, 64)?;
            fsi_data::csv::read_csv(BufReader::new(file), grid)?
        }
        _ => generate_los_angeles()?,
    };
    // Method/height may appear at position 0 (no CSV) or 1 (after CSV).
    let rest: Vec<&str> = args
        .iter()
        .map(String::as_str)
        .filter(|a| parse_method(a).is_some() || a.parse::<usize>().is_ok())
        .collect();
    let method = rest
        .iter()
        .find_map(|a| parse_method(a))
        .unwrap_or(Method::FairKd);
    let height = rest
        .iter()
        .find_map(|a| a.parse::<usize>().ok())
        .unwrap_or(6);

    println!(
        "re-districting {} individuals with {} at height {height}",
        dataset.len(),
        method.name()
    );
    let run = run_method(
        &dataset,
        &TaskSpec::act(),
        method,
        height,
        &RunConfig::default(),
    )?;

    println!(
        "\n{} neighborhoods ({} populated) | ENCE {:.4} | overall miscal {:.4} | test acc {:.3}",
        run.eval.num_regions,
        run.eval.occupied_regions,
        run.eval.full.ence,
        run.eval.full.miscalibration,
        run.eval.test.accuracy
    );
    println!(
        "\n{:>6} {:>6} {:>8} {:>8} {:>8}",
        "region", "pop", "e", "o", "|e-o|"
    );
    for (id, g) in run.eval.per_group.iter().enumerate() {
        if g.count > 0 {
            println!(
                "{id:>6} {:>6} {:>8.3} {:>8.3} {:>8.3}",
                g.count, g.mean_score, g.positive_fraction, g.absolute_error
            );
        }
    }

    // Persist the districting for downstream consumers.
    let out = "reports/partition.json";
    std::fs::create_dir_all("reports")?;
    std::fs::write(out, serde_json::to_string_pretty(&run.partition)?)?;
    println!("\npartition written to {out}");
    Ok(())
}
