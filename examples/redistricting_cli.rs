//! A small CLI: fair re-districting of a CSV dataset, and an online
//! query server over the saved districting.
//!
//! Build mode (default) reads a dataset in the `fsi-data` CSV layout (or
//! generates the LA preset when no path is given), builds a districting
//! with the requested method and height through `fsi::Pipeline`, prints
//! the per-neighborhood calibration table, and writes the partition to
//! JSON so downstream tools can consume the boundaries.
//!
//! Serve mode loads `reports/partition.json` (building it first if
//! absent), retrains the final model for those boundaries, compiles a
//! `FrozenIndex`, wires it into a `QueryService`, and answers queries
//! from stdin via `fsi::repl` — the same typed protocol the HTTP
//! transport speaks, as a line-oriented text surface (malformed lines
//! get an `error:` response; the loop never dies).
//!
//! ```sh
//! cargo run --release -p fsi --example redistricting_cli -- [CSV_PATH] [METHOD] [HEIGHT]
//! # METHOD: median | fair | iterative | reweight | zip | quad  (default fair)
//! # HEIGHT: tree height (default 6)
//!
//! cargo run --release -p fsi --example redistricting_cli -- serve [CSV_PATH] \
//!     [--cache N] [--topology FILE] [--resilience FILE] [--shard-of IDX] \
//!     [--listen ADDR] [--metrics] [--auto-rebuild]
//! # --cache N:        LRU decision-cache capacity (default 4096, 0 disables)
//! # --topology FILE:  serve a TopologySpec JSON ({"rows":R,"cols":C,"shards":[…]})
//! #                   as the scatter-gather coordinator; "local" slots are served
//! #                   in-process, "http://host:port" slots by remote shard servers
//! # --resilience FILE: a ResiliencePolicy JSON; replica slots of the topology
//! #                   ({"replicas":[…]}) fail over under it (retries, hedging,
//! #                   per-replica circuit breakers — requires --topology)
//! # --shard-of IDX:   serve only shard IDX of the topology (a partial index
//! #                   holding just that slot's leaves) — run one per slot
//! # --listen ADDR:    speak HTTP/1.1 JSON on ADDR instead of the stdin REPL
//! #                   (EOF on stdin stops the server)
//! # --metrics:        print the Prometheus text exposition when the server
//! #                   stops; with --listen the same text is scraped live
//! #                   from GET /metrics
//! # --auto-rebuild:   accept streamed observations (`ingest X Y G [L]` on the
//! #                   REPL, `Ingest`/`IngestBatch` over HTTP) and retrain +
//! #                   hot-swap in the background when the drift policy trips
//! # then on stdin:   X Y                  → one decision per line
//! #                  batch X1 Y1 X2 Y2 …  → batched decisions
//! #                  rect X0 Y0 X1 Y1     → neighborhoods touching the box
//! #                  stats                → per-shard generations / size / cache hit rate
//! #                  metrics              → one-line telemetry snapshot
//! #                  ingest X Y G [L]     → append one observation to the delta buffer
//! #                  rebuild <spec JSON>  → retrain + hot-swap every shard
//! #                  prepare <spec JSON> / commit → two-phase rebuild barrier
//! ```

use fsi::{
    repl, snapshot_for_partition, CacheSpec, FrozenIndex, Method, Partition, Pipeline,
    QueryService, RemoteShard, Run, RunConfig, TaskSpec, Topology, TopologySpec,
};
use fsi_data::synth::edgap::generate_los_angeles;
use fsi_data::SpatialDataset;
use fsi_geo::{Grid, Rect};
use fsi_serve::IndexHandle;
use std::io::BufReader;
use std::sync::Arc;

const PARTITION_PATH: &str = "reports/partition.json";

fn parse_method(s: &str) -> Option<Method> {
    Some(match s {
        "median" => Method::MedianKd,
        "fair" => Method::FairKd,
        "iterative" => Method::IterativeFairKd,
        "reweight" => Method::GridReweight,
        "zip" => Method::ZipCode,
        "quad" => Method::FairQuad,
        _ => return None,
    })
}

fn load_dataset(path: Option<&str>) -> Result<SpatialDataset, Box<dyn std::error::Error>> {
    match path {
        Some(path) => {
            let file = std::fs::File::open(path)
                .map_err(|e| format!("cannot open dataset CSV `{path}`: {e}"))?;
            let grid = Grid::new(Rect::unit(), 64, 64)?;
            Ok(fsi_data::csv::read_csv(BufReader::new(file), grid)?)
        }
        None => Ok(generate_los_angeles()?),
    }
}

/// Builds a districting, prints its calibration table, and persists the
/// partition for downstream consumers (including serve mode).
fn build(
    dataset: &SpatialDataset,
    method: Method,
    height: usize,
) -> Result<Run<'_>, Box<dyn std::error::Error>> {
    println!(
        "re-districting {} individuals with {} at height {height}",
        dataset.len(),
        method.name()
    );
    let run = Pipeline::on(dataset)
        .task(TaskSpec::act())
        .method(method)
        .height(height)
        .run()?;

    println!(
        "\n{} neighborhoods ({} populated) | ENCE {:.4} | overall miscal {:.4} | test acc {:.3}",
        run.eval().num_regions,
        run.eval().occupied_regions,
        run.eval().full.ence,
        run.eval().full.miscalibration,
        run.eval().test.accuracy
    );
    println!(
        "\n{:>6} {:>6} {:>8} {:>8} {:>8}",
        "region", "pop", "e", "o", "|e-o|"
    );
    for (id, g) in run.eval().per_group.iter().enumerate() {
        if g.count > 0 {
            println!(
                "{id:>6} {:>6} {:>8.3} {:>8.3} {:>8.3}",
                g.count, g.mean_score, g.positive_fraction, g.absolute_error
            );
        }
    }

    // Persist the districting for downstream consumers.
    std::fs::create_dir_all("reports")?;
    std::fs::write(
        PARTITION_PATH,
        serde_json::to_string_pretty(run.partition())?,
    )?;
    println!("\npartition written to {PARTITION_PATH}");
    Ok(run)
}

/// How `serve` deploys the compiled index.
struct ServeConfig {
    /// LRU decision-cache capacity (0 disables).
    cache_capacity: usize,
    /// Coordinator topology spec (`--topology FILE`).
    topology: Option<TopologySpec>,
    /// Resilience policy for replica slots (`--resilience FILE`).
    resilience: Option<fsi::ResiliencePolicy>,
    /// Serve only this shard of the topology (`--shard-of IDX`).
    shard_of: Option<usize>,
    /// Speak HTTP on this address instead of the stdin REPL.
    listen: Option<String>,
    /// Print the Prometheus text exposition when the server stops
    /// (`--metrics`); with `--listen` it is also scraped live from
    /// `GET /metrics`.
    metrics: bool,
    /// Enable streaming ingestion plus a background maintenance thread
    /// that retrains and hot-swaps when the drift policy trips
    /// (`--auto-rebuild`).
    auto_rebuild: bool,
}

/// Loads the saved partition (building the default districting first
/// when it is missing), compiles a `FrozenIndex`, and answers queries
/// from stdin (or HTTP with `--listen`) until EOF.
fn serve(dataset: &SpatialDataset, config: ServeConfig) -> Result<(), Box<dyn std::error::Error>> {
    let grid = dataset.grid();
    let (partition, snapshot, ence) = match std::fs::read_to_string(PARTITION_PATH) {
        Ok(json) => {
            let partition: Partition = serde_json::from_str(&json)?;
            if partition.grid_shape() != (grid.rows(), grid.cols()) {
                return Err(format!(
                    "saved partition is over a {:?} grid but the dataset uses {}x{} — rebuild it",
                    partition.grid_shape(),
                    grid.rows(),
                    grid.cols()
                )
                .into());
            }
            println!(
                "training the final model for {} saved neighborhoods…",
                partition.num_regions()
            );
            let model = snapshot_for_partition(
                dataset,
                &TaskSpec::act(),
                &partition,
                &RunConfig::default(),
            )?;
            (partition, model.snapshot, model.eval.full.ence)
        }
        // Only a genuinely absent file triggers the bootstrap build;
        // permission or I/O errors must not overwrite a saved partition.
        // The bootstrap run already trained the final model, so its
        // snapshot is reused rather than retraining.
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
            println!("{PARTITION_PATH} missing — building the default fair districting first");
            let run = build(dataset, Method::FairKd, 6)?;
            let snapshot = run.snapshot()?;
            let ence = run.eval().full.ence;
            (run.into_inner().partition, snapshot, ence)
        }
        Err(e) => return Err(format!("cannot read {PARTITION_PATH}: {e}").into()),
    };

    let index = FrozenIndex::from_partition(&partition, grid, &snapshot)?;
    let b = *index.bounds();
    println!(
        "serving {} neighborhoods over [{}, {}]×[{}, {}] ({} backend, {} B working set, ENCE {:.4})",
        index.num_leaves(),
        b.min_x,
        b.max_x,
        b.min_y,
        b.max_y,
        index.backend_name(),
        index.heap_bytes(),
        ence,
    );
    // One topology of shard backends behind one QueryService; the REPL
    // and HTTP transports are thin layers over the same dispatch.
    let topology = match (&config.topology, config.shard_of) {
        (Some(spec), Some(shard)) => {
            spec.validate()?;
            println!(
                "serving shard {shard} of a {}x{} topology (partial index)",
                spec.rows, spec.cols
            );
            Topology::partial(&index, spec.rows, spec.cols, shard)?
        }
        (Some(spec), None) => {
            println!(
                "coordinating a {}x{} topology: {:?}",
                spec.rows,
                spec.cols,
                spec.shards.iter().map(|b| b.as_wire()).collect::<Vec<_>>()
            );
            match &config.resilience {
                Some(policy) => {
                    policy.validate().map_err(|e| e.to_string())?;
                    println!(
                        "resilience: {} attempts, hedge_after={:?}ms, breaker opens after {} failures",
                        policy.max_attempts, policy.hedge_after_ms, policy.breaker_threshold
                    );
                    let connector = fsi::ResilientConnector::new(policy.clone())
                        .with_reconnect_attempts(policy.max_attempts.max(1));
                    Topology::from_spec(spec, index, connector)?
                }
                None => Topology::from_spec(spec, index, RemoteShard::connector())?,
            }
        }
        (None, Some(_)) => return Err("--shard-of requires --topology".into()),
        (None, None) => Topology::single(IndexHandle::new(index)),
    };
    let mut service = QueryService::new(topology).with_rebuild(Arc::new(dataset.clone()));
    if config.cache_capacity > 0 {
        service = service.with_cache(CacheSpec::per_worker(config.cache_capacity))?;
        println!(
            "decision cache: per-worker LRU, {} entries (`--cache 0` disables)",
            config.cache_capacity
        );
    }
    let maintenance = if config.auto_rebuild {
        if config.shard_of.is_some() {
            return Err(
                "--auto-rebuild runs on the coordinator; shard servers merge \
                 coordinator-shipped deltas without their own ingestion state"
                    .into(),
            );
        }
        service = service.with_ingest(TaskSpec::act())?;
        let policy = fsi::MaintenanceSpec::default();
        let spec = fsi::PipelineSpec::new(TaskSpec::act(), Method::FairKd, 6);
        println!(
            "auto-rebuild: drift threshold {}, max {} buffered, polling every {}ms \
             (`ingest X Y G [L]` feeds the buffer)",
            policy.drift_threshold, policy.max_buffered, policy.poll_interval_ms
        );
        Some(fsi::MaintenanceHandle::spawn(
            service.clone(),
            policy,
            spec,
        )?)
    } else {
        None
    };

    if let Some(addr) = &config.listen {
        let server = fsi::HttpServer::bind(service, addr.as_str())?;
        println!(
            "listening on http://{} (EOF on stdin stops it)",
            server.addr()
        );
        if config.metrics {
            println!("telemetry at http://{}/metrics", server.addr());
        }
        // Block until stdin closes, then drain in-flight requests.
        let mut sink = String::new();
        while std::io::stdin().read_line(&mut sink)? > 0 {
            sink.clear();
        }
        // A final scrape before shutdown so `--metrics` leaves a record
        // of what the server saw, even when nothing polled it live.
        let parting = if config.metrics {
            Some(fsi::scrape_metrics(server.addr())?)
        } else {
            None
        };
        server.shutdown();
        if let Some(handle) = maintenance {
            println!(
                "auto-rebuild published {} maintenance rebuilds",
                handle.stop()
            );
        }
        if let Some(text) = parting {
            print!("{text}");
        }
        return Ok(());
    }

    println!(
        "query format: `X Y`, `batch X1 Y1 …`, `rect X0 Y0 X1 Y1`, `stats`, \
         `rebuild <spec JSON>`, `prepare <spec JSON>`, `commit`, `abort`; EOF (ctrl-d) exits"
    );
    let stdin = std::io::stdin();
    let mut stdout = std::io::stdout();
    let stats = repl::serve_queries(&mut service, stdin.lock(), &mut stdout)?;
    if let Some(handle) = maintenance {
        println!(
            "auto-rebuild published {} maintenance rebuilds",
            handle.stop()
        );
    }
    eprintln!(
        "served {} queries ({} answered with errors)",
        stats.answered + stats.errors,
        stats.errors
    );
    if config.metrics {
        print!("{}", fsi::prometheus_text(&service.metrics_snapshot()));
    }
    Ok(())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().skip(1).collect();

    // `serve [CSV_PATH] [--cache N] [--topology FILE] [--shard-of IDX]
    // [--listen ADDR] [--metrics]` switches to online mode.
    if args.first().map(String::as_str) == Some("serve") {
        let mut config = ServeConfig {
            cache_capacity: 4096,
            topology: None,
            resilience: None,
            shard_of: None,
            listen: None,
            metrics: false,
            auto_rebuild: false,
        };
        let mut csv_path = None;
        let mut rest = args[1..].iter().map(String::as_str);
        while let Some(arg) = rest.next() {
            match arg {
                "--cache" => {
                    let n = rest
                        .next()
                        .ok_or("--cache requires a capacity (0 disables)")?;
                    config.cache_capacity =
                        n.parse().map_err(|_| format!("bad --cache value `{n}`"))?;
                }
                "--topology" => {
                    let path = rest.next().ok_or("--topology requires a JSON file path")?;
                    let json = std::fs::read_to_string(path)
                        .map_err(|e| format!("cannot read topology spec `{path}`: {e}"))?;
                    config.topology = Some(
                        serde_json::from_str(&json)
                            .map_err(|e| format!("bad topology spec `{path}`: {e}"))?,
                    );
                }
                "--resilience" => {
                    let path = rest
                        .next()
                        .ok_or("--resilience requires a JSON file path")?;
                    let json = std::fs::read_to_string(path)
                        .map_err(|e| format!("cannot read resilience policy `{path}`: {e}"))?;
                    config.resilience = Some(
                        serde_json::from_str(&json)
                            .map_err(|e| format!("bad resilience policy `{path}`: {e}"))?,
                    );
                }
                "--shard-of" => {
                    let n = rest.next().ok_or("--shard-of requires a shard index")?;
                    config.shard_of = Some(
                        n.parse()
                            .map_err(|_| format!("bad --shard-of value `{n}`"))?,
                    );
                }
                "--listen" => {
                    let addr = rest.next().ok_or("--listen requires host:port")?;
                    config.listen = Some(addr.to_string());
                }
                "--metrics" => config.metrics = true,
                "--auto-rebuild" => config.auto_rebuild = true,
                _ => csv_path = Some(arg),
            }
        }
        let dataset = load_dataset(csv_path)?;
        return serve(&dataset, config);
    }

    let dataset = match args.first().map(String::as_str) {
        // The first arg is a CSV path only when it is neither a method
        // name nor a bare height number.
        Some(path)
            if !path.is_empty()
                && parse_method(path).is_none()
                && path.parse::<usize>().is_err() =>
        {
            load_dataset(Some(path))?
        }
        _ => load_dataset(None)?,
    };
    // Method/height may appear at position 0 (no CSV) or 1 (after CSV).
    let rest: Vec<&str> = args
        .iter()
        .map(String::as_str)
        .filter(|a| parse_method(a).is_some() || a.parse::<usize>().is_ok())
        .collect();
    let method = rest
        .iter()
        .find_map(|a| parse_method(a))
        .unwrap_or(Method::FairKd);
    let height = rest
        .iter()
        .find_map(|a| a.parse::<usize>().ok())
        .unwrap_or(6);

    build(&dataset, method, height)?;
    Ok(())
}
