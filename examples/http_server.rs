//! Quickstart for the HTTP serving transport: train a fair index, bind
//! the std-only HTTP/1.1 JSON listener, and (in smoke mode) round-trip
//! the whole protocol through a real TCP client.
//!
//! ```sh
//! # Serve the LA preset on a fixed port until ctrl-c:
//! cargo run --release -p fsi --example http_server -- 127.0.0.1:7878
//!
//! # CI smoke mode: ephemeral port, in-process client, exits nonzero on
//! # any failed round-trip:
//! cargo run --release -p fsi --example http_server -- --smoke
//! ```
//!
//! Query it with any HTTP client, one request envelope per POST:
//!
//! ```sh
//! curl -s -d '{"v":1,"body":{"Lookup":{"x":0.31,"y":0.72}}}' http://127.0.0.1:7878/query
//! curl -s -d '{"v":1,"body":{"RangeQuery":{"rect":{"min_x":0.2,"min_y":0.2,"max_x":0.4,"max_y":0.4}}}}' http://127.0.0.1:7878/query
//! curl -s -d '{"v":1,"body":"Stats"}' http://127.0.0.1:7878/query
//! ```
//!
//! The same listener exposes Prometheus telemetry outside the JSON
//! envelope path — point a scraper (or curl) at it:
//!
//! ```sh
//! curl -s http://127.0.0.1:7878/metrics
//! ```

use fsi::{HttpClient, Method, Pipeline, Request, Response, TaskSpec, WirePoint, WireRect};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");

    // Smoke mode shrinks the dataset so CI finishes in seconds.
    let dataset = if smoke {
        fsi_data::synth::city::CityGenerator::new(fsi_data::synth::city::CityConfig {
            n_individuals: 300,
            grid_side: 16,
            seed: 7,
            ..Default::default()
        })?
        .generate()?
    } else {
        fsi_data::synth::edgap::generate_los_angeles()?
    };

    let serving = Pipeline::on(&dataset)
        .task(TaskSpec::act())
        .method(Method::FairKd)
        .height(if smoke { 4 } else { 10 })
        .run()?
        .serve()?;

    let addr = if smoke {
        "127.0.0.1:0".to_string() // ephemeral: never collides in CI
    } else {
        args.first()
            .cloned()
            .unwrap_or_else(|| "127.0.0.1:7878".to_string())
    };
    let server = serving.listen(&addr as &str)?;
    println!(
        "serving {} neighborhoods at http://{} (POST a request envelope to /query)",
        serving.handle().load().num_leaves(),
        server.addr()
    );

    if smoke {
        return smoke_round_trip(&server);
    }

    println!("examples:");
    println!(
        "  {}",
        fsi::encode_request(&Request::Lookup { x: 0.31, y: 0.72 })
    );
    println!("  {}", fsi::encode_request(&Request::Stats));
    println!("ctrl-c to stop");
    // Serve until the process is killed; the listener threads do the work.
    loop {
        std::thread::park();
    }
}

/// The CI smoke: one client, every request kind, hard failure on any
/// non-2xx status or unexpected response shape.
fn smoke_round_trip(server: &fsi::HttpServer) -> Result<(), Box<dyn std::error::Error>> {
    let mut client = HttpClient::connect(server.addr())?;

    let Response::Decision { decision } = client.call(&Request::Lookup { x: 0.31, y: 0.72 })?
    else {
        return Err("lookup did not answer a decision".into());
    };
    println!(
        "lookup   -> leaf {} calibrated {:.4}",
        decision.leaf_id, decision.calibrated_score
    );

    let Response::Decisions { decisions } = client.call(&Request::LookupBatch {
        points: (0..64)
            .map(|i| WirePoint::new((i as f64 + 0.5) / 64.0, ((i * 7) % 64) as f64 / 64.0))
            .collect(),
    })?
    else {
        return Err("batch did not answer decisions".into());
    };
    println!("batch    -> {} decisions", decisions.len());

    let Response::Regions { ids } = client.call(&Request::RangeQuery {
        rect: WireRect::new(0.2, 0.2, 0.6, 0.6),
    })?
    else {
        return Err("range query did not answer regions".into());
    };
    println!("range    -> {} neighborhoods", ids.len());

    let Response::Stats { stats } = client.call(&Request::Stats)? else {
        return Err("stats did not answer stats".into());
    };
    println!(
        "stats    -> gen {:?}, {} leaves, {} B, {} backend",
        stats.generations, stats.num_leaves, stats.heap_bytes, stats.backend
    );

    // An application-level error must still be a 2xx protocol exchange.
    let Response::Error { error } = client.call(&Request::Lookup { x: 9.0, y: 9.0 })? else {
        return Err("out-of-bounds lookup did not answer an error body".into());
    };
    println!("oob      -> {}: {}", error.code, error.message);

    // The text exposition must reflect the traffic above and parse as
    // Prometheus text: every sample line names a family that was
    // declared by a `# TYPE` comment before it.
    let text = fsi::scrape_metrics(server.addr())?;
    if !text.contains("fsi_requests_total{kind=\"lookup\"}") {
        return Err("metrics scrape is missing the lookup request counter".into());
    }
    if !text.contains("# TYPE fsi_request_latency_seconds summary") {
        return Err("metrics scrape is missing the latency summary family".into());
    }
    let mut declared = std::collections::HashSet::new();
    for line in text.lines() {
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            if let Some(name) = rest.split_whitespace().next() {
                declared.insert(name.to_string());
            }
            continue;
        }
        if line.starts_with('#') || line.is_empty() {
            continue;
        }
        let name = line
            .split(['{', ' '])
            .next()
            .unwrap_or("")
            .trim_end_matches("_sum")
            .trim_end_matches("_count")
            .to_string();
        if !declared.contains(&name) {
            return Err(format!("metrics sample `{line}` has no # TYPE declaration").into());
        }
        if line
            .rsplit(' ')
            .next()
            .and_then(|v| v.parse::<f64>().ok())
            .is_none()
        {
            return Err(format!("metrics sample `{line}` does not end in a number").into());
        }
    }
    println!(
        "metrics  -> {} families, {} bytes of exposition",
        declared.len(),
        text.len()
    );

    println!("smoke ok");
    Ok(())
}
