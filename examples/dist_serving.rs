//! Distributed serving end to end: two real HTTP shard servers, each
//! holding a **partial index** (only its half of the map), behind one
//! scatter-gather coordinator — then a two-phase rebuild that retrains
//! every shard and swaps all of them in lockstep.
//!
//! ```sh
//! cargo run --release -p fsi --example dist_serving
//! ```
//!
//! Everything runs in one process here (three `HttpServer`s on loopback
//! ports), but the shard servers and the coordinator only talk
//! `fsi-proto` over HTTP — the same deployment works across machines
//! via `redistricting_cli serve --topology spec.json` /
//! `--shard-of IDX --listen ADDR`.

use fsi::{BackendSpec, Method, Pipeline, Request, Response, TaskSpec, TopologySpec, WirePoint};
use fsi_data::synth::city::{CityConfig, CityGenerator};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dataset = CityGenerator::new(CityConfig {
        n_individuals: 400,
        grid_side: 16,
        seed: 11,
        ..CityConfig::default()
    })?
    .generate()?;

    // One trained deployment; the shards below all serve clips of it.
    let serving = Pipeline::on(&dataset)
        .task(TaskSpec::act())
        .method(Method::FairKd)
        .height(5)
        .run()?
        .serve()?;

    // Two shard servers over the halves of a 1×2 topology: each holds
    // only its slot's leaves, so per-shard memory scales down.
    let halves = TopologySpec::local(1, 2);
    let shard0 = fsi::HttpServer::bind(serving.service_shard(&halves, 0)?, "127.0.0.1:0")?;
    let shard1 = fsi::HttpServer::bind(serving.service_shard(&halves, 1)?, "127.0.0.1:0")?;
    println!("shard 0 listening on http://{}", shard0.addr());
    println!("shard 1 listening on http://{}", shard1.addr());

    // The coordinator: a serde-round-trippable TopologySpec naming both
    // shards by address, scatter-gathering over keep-alive connections.
    let spec = TopologySpec {
        rows: 1,
        cols: 2,
        shards: vec![
            BackendSpec::Http(shard0.addr().to_string()),
            BackendSpec::Http(shard1.addr().to_string()),
        ],
    };
    println!("topology spec: {}", serde_json::to_string(&spec)?);
    let coordinator = fsi::HttpServer::bind(serving.service_over(&spec)?, "127.0.0.1:0")?;
    println!("coordinator listening on http://{}\n", coordinator.addr());

    // Every query type through the coordinator, checked against the
    // single-box service: routed lookups, a scattered batch, a merged
    // range query.
    let mut single_box = serving.service();
    let mut client = fsi::HttpClient::connect(coordinator.addr())?;
    for (x, y) in [(0.2, 0.3), (0.5, 0.5), (0.8, 0.7)] {
        let via_wire = client.call(&Request::Lookup { x, y })?;
        assert_eq!(via_wire, single_box.dispatch(&Request::Lookup { x, y }));
        if let Response::Decision { decision } = via_wire {
            println!(
                "({x:.1}, {y:.1}) -> neighborhood {} calibrated {:.4}",
                decision.leaf_id, decision.calibrated_score
            );
        }
    }
    let batch = Request::LookupBatch {
        points: vec![
            WirePoint::new(0.1, 0.9),
            WirePoint::new(0.9, 0.1),
            WirePoint::new(0.5, 0.2),
        ],
    };
    assert_eq!(client.call(&batch)?, single_box.dispatch(&batch));
    let range = Request::RangeQuery {
        rect: fsi::WireRect::new(0.25, 0.25, 0.75, 0.75),
    };
    match (client.call(&range)?, single_box.dispatch(&range)) {
        (Response::Regions { ids }, Response::Regions { ids: expected }) => {
            assert_eq!(ids, expected);
            println!("range [0.25,0.75]² touches {} neighborhoods\n", ids.len());
        }
        other => return Err(format!("unexpected range answers: {other:?}").into()),
    }

    // Per-shard stats: the coordinator reports where each shard lives
    // and how small its partial index is next to a full replica.
    let full_heap = match single_box.dispatch(&Request::Stats) {
        Response::Stats { stats } => stats.heap_bytes,
        other => return Err(format!("unexpected stats answer: {other:?}").into()),
    };
    println!("full replica: heap={full_heap} B");
    if let Response::Stats { stats } = client.call(&Request::Stats)? {
        for (i, shard) in stats.per_shard.iter().flatten().enumerate() {
            println!(
                "shard {i}: {} {} generation={} leaves={} heap={} B ({}%)",
                shard.kind,
                shard.addr.as_deref().unwrap_or("(in-process)"),
                shard.generation,
                shard.num_leaves,
                shard.heap_bytes,
                shard.heap_bytes * 100 / full_heap.max(1)
            );
        }
    }

    // A rebuild through the coordinator runs the two-phase barrier:
    // both shards retrain and stage, then both commit — no client ever
    // sees a half-swapped fleet.
    let new_spec = fsi::PipelineSpec::new(TaskSpec::act(), Method::MedianKd, 4);
    match client.call(&Request::Rebuild { spec: new_spec })? {
        Response::Rebuilt { report } => println!(
            "\nrebuilt every shard to generation {} ({} leaves, ENCE {:.4})",
            report.generation, report.num_leaves, report.ence
        ),
        other => return Err(format!("rebuild failed: {other:?}").into()),
    }
    if let Response::Stats { stats } = client.call(&Request::Stats)? {
        println!("post-rebuild generations: {:?}", stats.generations);
        assert_eq!(stats.generations, vec![2, 2]);
    }

    coordinator.shutdown();
    shard0.shutdown();
    shard1.shutdown();
    Ok(())
}
