//! Multi-objective districting: one map, two decision tasks.
//!
//! The paper's §4.3 motivation: "a set of neighborhoods that are fairly
//! represented in a city budget allocation task may not necessarily result
//! in a fair representation of a map for deriving car insurance premia."
//! This example builds ONE districting that serves two tasks (ACT-based
//! school support and employment-based premium risk) with the
//! Multi-Objective Fair KD-tree, sweeping the priority weight alpha.
//!
//! ```sh
//! cargo run --release --example insurance_multiobjective
//! ```

use fsi::{Method, MultiPipeline, TaskSpec};
use fsi_data::synth::edgap::generate_los_angeles;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dataset = generate_los_angeles()?;
    let height = 6;

    println!("One districting, two tasks, height {height} (up to 64 neighborhoods).\n");

    // Baseline: a median KD-tree serves both tasks without fairness input.
    let median = MultiPipeline::on(&dataset)
        .task(TaskSpec::act(), 0.5)
        .task(TaskSpec::employment(), 0.5)
        .method(Method::MedianKd)
        .height(height)
        .run()?;
    println!(
        "{:<28} ACT ENCE {:.4} | Employment ENCE {:.4}",
        "Median KD-tree:",
        median.per_task()[0].1.full.ence,
        median.per_task()[1].1.full.ence
    );

    // Sweep the task priority: alpha = weight of the ACT task.
    println!("\nMulti-Objective Fair KD-tree, sweeping alpha (ACT priority):");
    println!(
        "{:>7} {:>12} {:>18}",
        "alpha", "ACT ENCE", "Employment ENCE"
    );
    for alpha in [0.0, 0.25, 0.5, 0.75, 1.0] {
        let run = MultiPipeline::on(&dataset)
            .task(TaskSpec::act(), alpha)
            .task(TaskSpec::employment(), 1.0 - alpha)
            .method(Method::FairKd)
            .height(height)
            .run()?;
        println!(
            "{alpha:>7.2} {:>12.4} {:>18.4}",
            run.per_task()[0].1.full.ence,
            run.per_task()[1].1.full.ence
        );
    }

    println!(
        "\nalpha trades fairness between the tasks; alpha = 0.5 (the paper's \
         setting) balances both below the median baseline."
    );
    Ok(())
}
