//! Quickstart: build a fair KD-tree districting and compare its spatial
//! fairness (ENCE) against the standard median KD-tree.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use fsi::{Method, Pipeline, TaskSpec};
use fsi_data::synth::edgap::generate_los_angeles;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A dataset: the synthetic Los Angeles preset (1153 school records,
    //    five socio-economic features, ACT outcomes on a 64x64 base grid).
    let dataset = generate_los_angeles()?;
    println!(
        "dataset: {} individuals on a {}x{} grid",
        dataset.len(),
        dataset.grid().rows(),
        dataset.grid().cols()
    );

    // 2. Build districtings at height 6 (up to 64 neighborhoods) with the
    //    standard median KD-tree and the paper's fair variants. The
    //    pipeline defaults match the paper: predict ACT >= 22 with
    //    logistic regression over a 70/30 split.
    println!(
        "\n{:<24} {:>8} {:>12} {:>12} {:>10}",
        "method", "regions", "ENCE", "miscal", "accuracy"
    );
    for method in [Method::MedianKd, Method::FairKd, Method::IterativeFairKd] {
        let run = Pipeline::on(&dataset)
            .task(TaskSpec::act())
            .method(method)
            .height(6)
            .run()?;
        println!(
            "{:<24} {:>8} {:>12.5} {:>12.5} {:>10.3}",
            method.name(),
            run.eval().occupied_regions,
            run.eval().full.ence,
            run.eval().full.miscalibration,
            run.eval().test.accuracy,
        );
    }

    println!("\nLower ENCE at comparable accuracy = fairer neighborhoods.");
    Ok(())
}
