//! Streaming ingestion end to end: a served fair index accepts a live
//! feed of observed points over HTTP while answering queries, a
//! background maintenance thread watches the drift the feed induces,
//! and when the policy trips it retrains on the merged data and
//! hot-swaps the index — readers never block, and the decision cache
//! invalidates itself through the generation bump.
//!
//! ```sh
//! cargo run --release -p fsi --example streaming
//! ```

use fsi::{MaintenanceSpec, Method, Pipeline, Request, Response, TaskSpec};
use fsi_data::synth::city::{CityConfig, CityGenerator};
use std::time::{Duration, Instant};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dataset = CityGenerator::new(CityConfig {
        n_individuals: 400,
        grid_side: 16,
        seed: 11,
        ..CityConfig::default()
    })?
    .generate()?;

    // Train and deploy with streaming ingestion: appended points land
    // in a delta buffer over the frozen snapshot, and this policy
    // decides when drift (or buffer occupancy) warrants folding them in
    // through a background rebuild.
    let policy = MaintenanceSpec {
        drift_threshold: 0.05,
        max_buffered: 4096,
        max_staleness_ms: 0,
        poll_interval_ms: 25,
    };
    let serving = Pipeline::on(&dataset)
        .task(TaskSpec::act())
        .method(Method::FairKd)
        .height(5)
        .run()?
        .serve_with_ingest(policy)?;

    let service = serving.service();
    let maintenance = serving.spawn_maintenance(&service)?;
    let server = fsi::HttpServer::bind(service, "127.0.0.1:0")?;
    println!("serving with live ingestion on http://{}", server.addr());

    let mut client = fsi::HttpClient::connect(server.addr())?;
    let before = match client.call(&Request::Lookup { x: 0.82, y: 0.83 })? {
        Response::Decision { decision } => decision,
        other => return Err(format!("unexpected lookup answer: {other:?}").into()),
    };
    println!(
        "before the feed: (0.82, 0.83) -> neighborhood {} calibrated {:.4}",
        before.leaf_id, before.calibrated_score
    );

    // A concentrated wave of new observations in the north-east corner:
    // one cohort, mostly positive outcomes — exactly the local shift the
    // drift detector scores against the frozen snapshot's statistics.
    let mut streamed = 0u64;
    for wave in 0..8u32 {
        let points: Vec<fsi::IngestBody> = (0..64u32)
            .map(|i| {
                let x = 0.75 + 0.03 * f64::from(i % 8) + 0.001 * f64::from(wave);
                let y = 0.75 + 0.03 * f64::from(i / 8);
                fsi::IngestBody::new(x, y, 1, i % 4 != 0)
            })
            .collect();
        match client.call(&Request::IngestBatch { points })? {
            Response::Ingested {
                accepted, buffered, ..
            } => {
                streamed += accepted;
                if wave % 4 == 3 {
                    println!("streamed {streamed} points ({buffered} buffered)");
                }
            }
            other => return Err(format!("unexpected ingest answer: {other:?}").into()),
        }
    }

    // The maintenance thread notices the drift on its next poll,
    // retrains on seed ∪ streamed points, and republishes. Wait for the
    // generation bump (readers keep answering generation 1 meanwhile).
    let deadline = Instant::now() + Duration::from_secs(60);
    let mut generation = 1;
    while generation < 2 && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(25));
        if let Response::Stats { stats } = client.call(&Request::Stats)? {
            generation = stats.generations.iter().copied().max().unwrap_or(1);
        }
    }
    if generation < 2 {
        return Err("maintenance never republished within 60s".into());
    }
    println!(
        "\nmaintenance rebuilt to generation {generation} \
         ({} background rebuilds so far)",
        maintenance.rebuilds()
    );

    let after = match client.call(&Request::Lookup { x: 0.82, y: 0.83 })? {
        Response::Decision { decision } => decision,
        other => return Err(format!("unexpected lookup answer: {other:?}").into()),
    };
    println!(
        "after the rebuild: (0.82, 0.83) -> neighborhood {} calibrated {:.4}",
        after.leaf_id, after.calibrated_score
    );

    // The telemetry surface carries the whole story: accepted points,
    // the drained buffer, the re-measured (now ~zero) drift score, and
    // the maintenance pass duration histogram.
    if let Response::Metrics { metrics } = client.call(&Request::Metrics)? {
        if let Some(ingest) = &metrics.ingest {
            println!(
                "\ntelemetry: accepted={} rejected={} buffered={} drift={:.4} \
                 maintenance_rebuilds={}",
                ingest.accepted,
                ingest.rejected,
                ingest.buffered,
                ingest.drift_score,
                ingest.maintenance.count()
            );
            assert_eq!(ingest.accepted, streamed);
            assert_eq!(ingest.buffered, 0, "the rebuild must drain the buffer");
        }
    }

    let published = maintenance.stop();
    println!("stopped maintenance after {published} background rebuilds");
    server.shutdown();
    Ok(())
}
