//! Loan screening: the paper's motivating scenario.
//!
//! A lender scores applicants with a classifier that uses socio-economic
//! features *and* the applicant's neighborhood. The model looks fine
//! overall — yet individual neighborhoods are badly mis-calibrated, which
//! systematically mis-prices whole communities. This example measures the
//! disparity under zip-code districting (the paper's Figure 6 evidence),
//! then fixes it by re-districting with a Fair KD-tree.
//!
//! ```sh
//! cargo run --release --example loan_screening
//! ```

use fsi::{FsiError, Method, Pipeline, TaskSpec};
use fsi_data::synth::edgap::generate_houston;
use fsi_fairness::{group_calibration, SpatialGroups};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Houston stands in for the lender's service area; the ACT outcome
    // plays the role of the repayment outcome.
    let dataset = generate_houston()?;

    println!("=== 1. Business-as-usual: zip-code districting ===");
    let zip = Pipeline::on(&dataset)
        .task(TaskSpec::act())
        .method(Method::ZipCode)
        .height(1)
        .run()?;
    describe(&zip, &dataset)?;

    println!("\n=== 2. Re-districted with the Fair KD-tree (height 6) ===");
    let fair = Pipeline::on(&dataset)
        .task(TaskSpec::act())
        .method(Method::FairKd)
        .height(6)
        .run()?;
    describe(&fair, &dataset)?;

    let improvement = zip.eval().full.ence / fair.eval().full.ence;
    println!(
        "\nFair re-districting reduced neighborhood-level mis-calibration \
         (ENCE) by {improvement:.1}x at comparable accuracy \
         ({:.3} -> {:.3}).",
        zip.eval().test.accuracy,
        fair.eval().test.accuracy
    );
    Ok(())
}

fn describe(run: &fsi::Run<'_>, dataset: &fsi_data::SpatialDataset) -> Result<(), FsiError> {
    println!(
        "{}: {} neighborhoods ({} populated), overall calibration ratio {:.3}",
        run.method.name(),
        run.eval.num_regions,
        run.eval.occupied_regions,
        run.eval.full.calibration_ratio.unwrap_or(f64::NAN),
    );
    println!(
        "  ENCE {:.4} | overall miscal {:.4} | test accuracy {:.3}",
        run.eval.full.ence, run.eval.full.miscalibration, run.eval.test.accuracy
    );

    // The five worst-served populous neighborhoods.
    let groups = SpatialGroups::from_partition(dataset.cells(), run.partition())?;
    let stats = group_calibration(&run.scores, &run.labels, &groups)?;
    let mut populous: Vec<_> = stats.iter().filter(|s| s.count >= 20).collect();
    populous.sort_by(|a, b| {
        b.absolute_error
            .partial_cmp(&a.absolute_error)
            .expect("finite errors")
    });
    println!("  worst-served neighborhoods (>=20 residents):");
    for s in populous.iter().take(5) {
        println!(
            "    pop {:>4}  e={:.3} o={:.3}  |e-o|={:.3}  ratio={}",
            s.count,
            s.mean_score,
            s.positive_fraction,
            s.absolute_error,
            s.ratio
                .map(|r| format!("{r:.2}"))
                .unwrap_or_else(|| "inf".into()),
        );
    }
    Ok(())
}
